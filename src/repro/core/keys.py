"""Thread-private random key management.

The paper's mechanisms hinge on one hardware facility (Section 5.4): every
hardware thread context owns a private random number, held in a dedicated
register invisible to software, regenerated whenever

* the OS switches the software context running on that hardware thread, or
* the running software changes privilege level (system call, exception,
  hypervisor entry/exit).

Different (possibly overlapping) portions of that random number serve as the
*content key* (XOR-BP) and the *index key* (Noisy-XOR-BP).  The OS and the
hypervisor effectively get their own keys because the key changes on every
privilege transition.

The hardware true-random-number generator is modelled with a seeded
:class:`random.Random` so that experiments are reproducible; nothing in the
mechanism depends on the randomness source beyond unpredictability to the
attacker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import Privilege

__all__ = ["KeyState", "KeyManager"]

#: Width of the raw per-thread random number, from which content and index
#: keys are carved.  64 bits comfortably covers the widest encoded field
#: (a 32-bit target address) plus the index key.
MASTER_KEY_BITS = 64


@dataclass
class KeyState:
    """Current key material of one hardware thread.

    Attributes:
        master: the raw hardware random number.
        privilege: privilege level the key was generated for.
        generation: how many times this thread's key has been regenerated.
    """

    master: int = 0
    privilege: Privilege = Privilege.USER
    generation: int = 0


@dataclass
class KeyEvent:
    """A recorded key regeneration (kept for analysis and tests)."""

    thread_id: int
    reason: str
    generation: int
    privilege: Privilege = Privilege.USER


class KeyManager:
    """Per-hardware-thread key registers with switch-driven regeneration.

    Args:
        seed: seed of the modelled hardware RNG (reproducibility).
        key_bits: width of the raw random number per thread.
        rotate_on_privilege_switch: regenerate the key on privilege changes
            (the paper's design).  Disabling this models the weaker variant
            that only refreshes on context switches; the key-staleness
            ablation uses it.
        record_events: keep a log of key regenerations for analysis.
    """

    def __init__(self, seed: int = 0xC0FFEE, key_bits: int = MASTER_KEY_BITS, *,
                 rotate_on_privilege_switch: bool = True,
                 record_events: bool = False) -> None:
        if key_bits < 8:
            raise ValueError("key_bits must be at least 8")
        self._rng = random.Random(seed)
        self._key_bits = key_bits
        self._states: Dict[int, KeyState] = {}
        self._rotate_on_privilege = rotate_on_privilege_switch
        self._record = record_events
        self.events: List[KeyEvent] = []
        self.context_switches = 0
        self.privilege_switches = 0

    # -- key material ---------------------------------------------------------
    @property
    def key_bits(self) -> int:
        """Width of the per-thread raw random number."""
        return self._key_bits

    def _fresh_master(self) -> int:
        return self._rng.getrandbits(self._key_bits)

    def state(self, thread_id: int) -> KeyState:
        """Key state of a hardware thread (created lazily)."""
        if thread_id not in self._states:
            self._states[thread_id] = KeyState(master=self._fresh_master(),
                                               privilege=Privilege.USER,
                                               generation=0)
        return self._states[thread_id]

    def master_key(self, thread_id: int) -> int:
        """Raw random number currently held by a hardware thread."""
        return self.state(thread_id).master

    def generation(self, thread_id: int) -> int:
        """Number of key regenerations a hardware thread has seen."""
        return self.state(thread_id).generation

    def content_key(self, thread_id: int, width_bits: int) -> int:
        """Content key: the low portion of the raw random number."""
        return self._stretch(self.state(thread_id).master, width_bits)

    def index_key(self, thread_id: int, width_bits: int) -> int:
        """Index key: a different portion of the raw random number."""
        master = self.state(thread_id).master
        rotated = ((master >> (self._key_bits // 2))
                   | (master << (self._key_bits - self._key_bits // 2)))
        return self._stretch(rotated, width_bits)

    def derived_key(self, thread_id: int, salt: int, width_bits: int) -> int:
        """Key derived from the master key and a salt (per-table keys).

        Figure 6's caption notes that each table may use its own content and
        index key; deriving them from the single hardware random number with a
        cheap mix keeps the hardware cost at one RNG draw per switch.
        """
        master = self.state(thread_id).master
        mixed = master ^ (salt * 0x9E3779B97F4A7C15)
        mixed ^= mixed >> 29
        mixed *= 0xBF58476D1CE4E5B9
        mixed ^= mixed >> 32
        return self._stretch(mixed, width_bits)

    def _stretch(self, value: int, width_bits: int) -> int:
        """Repeat/truncate key material to an arbitrary field width."""
        if width_bits <= 0:
            return 0
        value &= (1 << self._key_bits) - 1
        out = value
        bits = self._key_bits
        while bits < width_bits:
            out = (out << self._key_bits) | value
            bits += self._key_bits
        return out & ((1 << width_bits) - 1)

    # -- switch notifications -------------------------------------------------
    def rotate(self, thread_id: int, reason: str = "manual") -> int:
        """Regenerate the key of one hardware thread; returns the new master."""
        state = self.state(thread_id)
        state.master = self._fresh_master()
        state.generation += 1
        if self._record:
            self.events.append(KeyEvent(thread_id, reason, state.generation,
                                        state.privilege))
        return state.master

    def on_context_switch(self, thread_id: int) -> None:
        """OS scheduled a different software context onto ``thread_id``."""
        self.context_switches += 1
        self.rotate(thread_id, reason="context_switch")

    def on_privilege_switch(self, thread_id: int, privilege: Privilege) -> None:
        """The software on ``thread_id`` changed privilege level."""
        state = self.state(thread_id)
        if state.privilege == privilege:
            return
        state.privilege = privilege
        self.privilege_switches += 1
        if self._rotate_on_privilege:
            self.rotate(thread_id, reason="privilege_switch")

    def privilege_of(self, thread_id: int) -> Privilege:
        """Current privilege level tracked for a hardware thread."""
        return self.state(thread_id).privilege

    def reset(self) -> None:
        """Drop all thread states and counters (a fresh machine)."""
        self._states.clear()
        self.events.clear()
        self.context_switches = 0
        self.privilege_switches = 0
