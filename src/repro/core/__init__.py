"""The paper's contribution: lightweight content/index isolation for branch predictors.

This subpackage implements XOR-BP (content encoding with thread-private keys),
Enhanced-XOR-PHT (word-basis content encoding) and Noisy-XOR-BP (content plus
index encoding), the flush-based baselines they are compared against, the
per-thread key management they rely on, and a registry that wires
predictor × mechanism combinations into ready-to-use branch prediction units.
"""

from .encoding import (
    ENCODERS,
    ContentEncoder,
    SboxEncoder,
    ShiftXorEncoder,
    XorEncoder,
    make_encoder,
    stretch_key,
)
from .isolation import (
    BaselineIsolation,
    CompleteFlushIsolation,
    IsolationMechanism,
    NoisyXorIsolation,
    PreciseFlushIsolation,
    XorContentIsolation,
)
from .keys import KeyManager, KeyState
from .registry import (
    MECHANISMS,
    PROTECTION_PRESETS,
    ProtectionConfig,
    make_bpu,
    make_isolation,
    preset_names,
    resolve_preset,
)
from .secure import BranchOutcome, BranchPredictionUnit

__all__ = [
    "ContentEncoder",
    "XorEncoder",
    "ShiftXorEncoder",
    "SboxEncoder",
    "ENCODERS",
    "make_encoder",
    "stretch_key",
    "IsolationMechanism",
    "BaselineIsolation",
    "CompleteFlushIsolation",
    "PreciseFlushIsolation",
    "XorContentIsolation",
    "NoisyXorIsolation",
    "KeyManager",
    "KeyState",
    "ProtectionConfig",
    "PROTECTION_PRESETS",
    "MECHANISMS",
    "make_isolation",
    "make_bpu",
    "preset_names",
    "resolve_preset",
    "BranchOutcome",
    "BranchPredictionUnit",
]
