"""Command-line interface.

Exposes the package's main entry points without writing any Python::

    python -m repro list                         # what can be reproduced
    python -m repro run figure7 --json out.json  # regenerate one artefact
    python -m repro attack branchscope --mechanism noisy_xor_bp
    python -m repro leakage --mechanisms baseline noisy_xor_bp
    python -m repro hwcost --btb 256 --ways 2 --pht 4096
    python -m repro report --output results.md   # paper-vs-measured summary

Every subcommand prints human-readable text to stdout; ``run`` and ``report``
can additionally write machine-readable artefacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Lightweight Isolation Mechanism for "
                    "Secure Branch Predictors' (DAC 2021).")
    subparsers = parser.add_subparsers(dest="command", metavar="command")

    subparsers.add_parser("list", help="list reproducible experiments, attacks "
                                       "and protection presets")

    run = subparsers.add_parser("run", help="run one experiment (table/figure)")
    run.add_argument("experiment", help="experiment key, e.g. figure7 or table5")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-length scale factor (default from REPRO_SCALE)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the result as JSON")
    run.add_argument("--csv", default=None, metavar="PATH",
                     help="also write the figure series as CSV")

    attack = subparsers.add_parser("attack", help="run one attack against one "
                                                  "protection preset")
    attack.add_argument("attack", help="attack name, e.g. branchscope or sbpa")
    attack.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    attack.add_argument("--iterations", type=int, default=1000,
                        help="attack iterations (default: 1000)")
    attack.add_argument("--smt", action="store_true",
                        help="concurrent-attacker (SMT) scenario")
    attack.add_argument("--predictor", default="bimodal",
                        help="direction predictor of the victim core")

    leakage = subparsers.add_parser("leakage", help="measure channel leakage "
                                                    "(mutual information)")
    leakage.add_argument("--mechanisms", nargs="+",
                         default=["baseline", "complete_flush", "noisy_xor_bp"],
                         help="protection presets to compare")
    leakage.add_argument("--trials", type=int, default=300,
                         help="prime-victim-probe trials per channel")
    leakage.add_argument("--smt", action="store_true",
                         help="concurrent-attacker (SMT) scenario")

    covert = subparsers.add_parser("covert", help="measure the PHT covert-channel "
                                                  "capacity under one preset")
    covert.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    covert.add_argument("--bits", type=int, default=256,
                        help="payload bits to transmit (default: 256)")
    covert.add_argument("--smt", action="store_true",
                        help="concurrent sender/receiver (SMT) scenario")

    hwcost = subparsers.add_parser("hwcost", help="estimate Noisy-XOR-BP "
                                                  "area/timing overhead")
    hwcost.add_argument("--btb", type=int, default=256,
                        help="BTB entries per way (default: 256)")
    hwcost.add_argument("--ways", type=int, default=2,
                        help="BTB associativity (default: 2)")
    hwcost.add_argument("--pht", type=int, default=4096,
                        help="TAGE PHT entries per table (default: 4096)")
    hwcost.add_argument("--tables", type=int, default=6,
                        help="number of TAGE tables (default: 6)")

    report = subparsers.add_parser("report", help="run the headline experiments "
                                                  "and write a paper-vs-measured "
                                                  "Markdown report")
    report.add_argument("--experiments", nargs="+", default=None,
                        help="experiment keys to include (default: the quick set)")
    report.add_argument("--scale", type=float, default=None,
                        help="trace-length scale factor")
    report.add_argument("--output", default=None, metavar="PATH",
                        help="write the Markdown report to this file")

    return parser


def _cmd_list() -> int:
    from .attacks import ALL_ATTACKS
    from .core import preset_names
    from .experiments import EXPERIMENTS
    from .predictors import DIRECTION_PREDICTORS

    print("Experiments (python -m repro run <key>):")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nAttacks (python -m repro attack <name>):")
    for name in sorted(ALL_ATTACKS):
        print(f"  {name}")
    print("\nProtection presets (--mechanism):")
    for name in preset_names():
        print(f"  {name}")
    print("\nDirection predictors (--predictor):")
    for name in sorted(DIRECTION_PREDICTORS):
        print(f"  {name}")
    return 0


def _resolve_scale(factor: Optional[float]):
    from .experiments import default_scale

    scale = default_scale()
    if factor is not None:
        scale = scale.scaled_by(factor)
    return scale


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis.export import save_figure_csv, save_result_json
    from .experiments import EXPERIMENTS

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    result = EXPERIMENTS[args.experiment](scale)
    print(result.render())
    if args.json:
        path = save_result_json(result, args.json)
        print(f"\nJSON written to {path}")
    if args.csv:
        path = save_figure_csv(result, args.csv)
        if path is None:
            print("\n(no figure series to export as CSV)")
        else:
            print(f"\nCSV written to {path}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import ALL_ATTACKS, run_attack

    if args.attack not in ALL_ATTACKS:
        print(f"unknown attack {args.attack!r}; "
              f"try: {', '.join(sorted(ALL_ATTACKS))}", file=sys.stderr)
        return 2
    result = run_attack(args.attack, args.mechanism, smt=args.smt,
                        iterations=args.iterations, predictor=args.predictor)
    rows = [
        ["attack", result.attack],
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "single-threaded"],
        ["iterations", result.iterations],
        ["successes", result.successes],
        ["success rate", f"{100 * result.success_rate:.2f}%"],
        ["chance level", f"{100 * result.chance_level:.2f}%"],
        ["advantage", f"{100 * result.advantage:.2f}%"],
    ]
    print(render_table(["field", "value"], rows))
    return 0


def _cmd_leakage(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .security.leakage import leakage_bandwidth, leakage_report

    report = leakage_report(args.mechanisms, trials=args.trials, smt=args.smt)
    rows = []
    for mechanism, channels in report.items():
        for channel, estimate in channels.items():
            rows.append([
                mechanism, channel,
                f"{estimate.mutual_information_bits:.4f}",
                f"{100 * estimate.guess_accuracy:.1f}%",
                f"{leakage_bandwidth(estimate):.1f}",
            ])
    print(render_table(
        ["mechanism", "channel", "MI (bits/trial)", "guess accuracy",
         "bandwidth (bits/s)"], rows,
        title=f"Leakage over {args.trials} trials "
              f"({'SMT' if args.smt else 'single-threaded'} scenario)"))
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import run_covert_channel

    result = run_covert_channel(args.mechanism, payload_bits=args.bits,
                                smt=args.smt)
    rows = [
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "time-shared"],
        ["bits sent", result.bits_sent],
        ["bit error rate", f"{100 * result.bit_error_rate:.1f}%"],
        ["capacity", f"{result.capacity_bits_per_symbol:.3f} bits/symbol"],
        ["bandwidth", f"{result.bandwidth_bits_per_second:,.0f} bits/s"],
    ]
    print(render_table(["field", "value"], rows,
                       title="PHT covert channel"))
    return 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .hwcost import btb_cost, tage_pht_cost

    btb = btb_cost(args.btb, args.ways)
    pht = tage_pht_cost(args.pht, args.tables)
    rows = [
        [f"BTB {args.ways}w{args.btb}", f"{100 * btb.timing_overhead:.2f}%",
         f"{100 * btb.area_overhead:.2f}%"],
        [f"TAGE PHT {args.pht}x{args.tables}", f"{100 * pht.timing_overhead:.2f}%",
         f"{100 * pht.area_overhead:.2f}%"],
    ]
    print(render_table(["structure", "timing overhead", "area overhead"], rows,
                       title="Noisy-XOR-BP hardware cost estimate (Table 5 model)"))
    return 0


#: Experiments included in the default ``report`` run: the cheap, headline set.
_DEFAULT_REPORT_EXPERIMENTS = ["table2", "table3", "table5", "poc_attacks",
                               "figure7", "figure8", "figure9"]


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import PAPER_EXPECTATIONS, ReproductionReport
    from .experiments import EXPERIMENTS

    keys = args.experiments if args.experiments else list(_DEFAULT_REPORT_EXPERIMENTS)
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    report = ReproductionReport(title="Reproduction report")
    for key in keys:
        result = EXPERIMENTS[key](scale)
        if key in PAPER_EXPECTATIONS:
            report.add_result(key, result)
        print(result.render())
        print()
    markdown = report.to_markdown()
    print(markdown)
    if args.output:
        report.save(args.output)
        print(f"Markdown report written to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "leakage":
        return _cmd_leakage(args)
    if args.command == "covert":
        return _cmd_covert(args)
    if args.command == "hwcost":
        return _cmd_hwcost(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.error(f"unhandled command {args.command!r}")
    return 2
