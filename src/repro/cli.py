"""Command-line interface.

Exposes the package's main entry points without writing any Python::

    python -m repro list                         # what can be reproduced
    python -m repro run figure7 --json out.json  # regenerate one artefact
    python -m repro run all --jobs 4 --out out/  # the whole paper, one pipeline
    python -m repro run all --shard 0/4 --out out/   # one shard of a fleet
    python -m repro merge --out merged out/shard-*.json  # assemble the fleet
    python -m repro plan --hash                  # manifest digest (CI cache key)
    python -m repro attack branchscope --mechanism noisy_xor_bp
    python -m repro leakage --mechanisms baseline noisy_xor_bp
    python -m repro hwcost --btb 256 --ways 2 --pht 4096
    python -m repro report --output results.md   # paper-vs-measured summary

Every subcommand prints human-readable text to stdout; ``run``, ``merge`` and
``report`` can additionally write machine-readable artefacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Lightweight Isolation Mechanism for "
                    "Secure Branch Predictors' (DAC 2021).")
    subparsers = parser.add_subparsers(dest="command", metavar="command")

    subparsers.add_parser("list", help="list reproducible experiments, attacks "
                                       "and protection presets")

    run = subparsers.add_parser(
        "run", help="run one experiment (table/figure), or 'all' for the "
                    "whole sharded reproduction pipeline")
    run.add_argument("experiment", help="experiment key (e.g. figure7, table5) "
                                        "or 'all' for the full manifest")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-length scale factor (default from REPRO_SCALE)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the result as JSON")
    run.add_argument("--csv", default=None, metavar="PATH",
                     help="also write the figure series as CSV")
    run.add_argument("--experiments", nargs="+", default=None, metavar="KEY",
                     help="with 'all': subset of experiment keys to plan")
    run.add_argument("--shard", default=None, metavar="I/N",
                     help="with 'all': execute only this shard of the global "
                          "case manifest (0-based, e.g. 0/4; default from "
                          "REPRO_SHARD) and write a shard artifact")
    run.add_argument("--jobs", default=None, metavar="N",
                     help="worker processes (default from REPRO_JOBS)")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="with 'all': output directory (shard artifact, or "
                          "merged figures/tables for unsharded runs)")

    merge = subparsers.add_parser(
        "merge", help="merge 'run all --shard' artifacts into final "
                      "figures/tables, asserting every planned case was "
                      "executed exactly once across the shards")
    merge.add_argument("artifacts", nargs="+", metavar="SHARD_JSON",
                       help="shard artifact files written by run all --shard")
    merge.add_argument("--out", default=None, metavar="DIR",
                       help="write merged per-experiment JSON/text here")

    plan = subparsers.add_parser(
        "plan", help="plan the global case manifest without running anything")
    plan.add_argument("--experiments", nargs="+", default=None, metavar="KEY",
                      help="subset of experiment keys to plan")
    plan.add_argument("--scale", type=float, default=None,
                      help="trace-length scale factor")
    plan.add_argument("--hash", action="store_true",
                      help="print only '<engine>:<manifest hash>' (CI cache key)")
    plan.add_argument("--json", action="store_true",
                      help="print the full manifest summary as JSON")

    attack = subparsers.add_parser("attack", help="run one attack against one "
                                                  "protection preset")
    attack.add_argument("attack", help="attack name, e.g. branchscope or sbpa")
    attack.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    attack.add_argument("--iterations", type=int, default=1000,
                        help="attack iterations (default: 1000)")
    attack.add_argument("--smt", action="store_true",
                        help="concurrent-attacker (SMT) scenario")
    attack.add_argument("--predictor", default="bimodal",
                        help="direction predictor of the victim core")

    leakage = subparsers.add_parser("leakage", help="measure channel leakage "
                                                    "(mutual information)")
    leakage.add_argument("--mechanisms", nargs="+",
                         default=["baseline", "complete_flush", "noisy_xor_bp"],
                         help="protection presets to compare")
    leakage.add_argument("--trials", type=int, default=300,
                         help="prime-victim-probe trials per channel")
    leakage.add_argument("--smt", action="store_true",
                         help="concurrent-attacker (SMT) scenario")

    covert = subparsers.add_parser("covert", help="measure the PHT covert-channel "
                                                  "capacity under one preset")
    covert.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    covert.add_argument("--bits", type=int, default=256,
                        help="payload bits to transmit (default: 256)")
    covert.add_argument("--smt", action="store_true",
                        help="concurrent sender/receiver (SMT) scenario")

    hwcost = subparsers.add_parser("hwcost", help="estimate Noisy-XOR-BP "
                                                  "area/timing overhead")
    hwcost.add_argument("--btb", type=int, default=256,
                        help="BTB entries per way (default: 256)")
    hwcost.add_argument("--ways", type=int, default=2,
                        help="BTB associativity (default: 2)")
    hwcost.add_argument("--pht", type=int, default=4096,
                        help="TAGE PHT entries per table (default: 4096)")
    hwcost.add_argument("--tables", type=int, default=6,
                        help="number of TAGE tables (default: 6)")

    report = subparsers.add_parser("report", help="run the headline experiments "
                                                  "and write a paper-vs-measured "
                                                  "Markdown report")
    report.add_argument("--experiments", nargs="+", default=None,
                        help="experiment keys to include (default: the quick set)")
    report.add_argument("--scale", type=float, default=None,
                        help="trace-length scale factor")
    report.add_argument("--output", default=None, metavar="PATH",
                        help="write the Markdown report to this file")

    return parser


def _cmd_list() -> int:
    from .attacks import ALL_ATTACKS
    from .core import preset_names
    from .experiments import EXPERIMENTS
    from .predictors import DIRECTION_PREDICTORS

    print("Experiments (python -m repro run <key>):")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nAttacks (python -m repro attack <name>):")
    for name in sorted(ALL_ATTACKS):
        print(f"  {name}")
    print("\nProtection presets (--mechanism):")
    for name in preset_names():
        print(f"  {name}")
    print("\nDirection predictors (--predictor):")
    for name in sorted(DIRECTION_PREDICTORS):
        print(f"  {name}")
    return 0


def _resolve_scale(factor: Optional[float]):
    from .experiments import default_scale

    scale = default_scale()
    if factor is not None:
        scale = scale.scaled_by(factor)
    return scale


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis.export import save_figure_csv, save_result_json
    from .experiments import EXPERIMENTS

    if args.experiment == "all":
        return _cmd_run_all(args)
    if _env_jobs_error():
        return 2
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    result = EXPERIMENTS[args.experiment](scale)
    print(result.render())
    if args.json:
        path = save_result_json(result, args.json)
        print(f"\nJSON written to {path}")
    if args.csv:
        path = save_figure_csv(result, args.csv)
        if path is None:
            print("\n(no figure series to export as CSV)")
        else:
            print(f"\nCSV written to {path}")
    return 0


def _env_jobs_error() -> bool:
    """Surface a malformed ``REPRO_JOBS`` as a clean CLI error.

    Any command that ends up in :func:`default_executor` would otherwise die
    with an uncaught traceback from deep inside the executor setup.
    """
    from .experiments.executor import env_jobs

    try:
        env_jobs()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return True
    return False


def _resolve_jobs(raw) -> int:
    # A malformed --jobs or REPRO_JOBS must fail here, before any planning or
    # pool setup, with the offending setting named.
    from .experiments.executor import env_jobs, parse_jobs

    if raw is None:
        return env_jobs()
    return parse_jobs(raw, source="--jobs")


def _cmd_run_all(args: argparse.Namespace) -> int:
    from .experiments.manifest import build_manifest, env_shard, parse_shard
    from .experiments.pipeline import execute_shard, run_serial

    if args.json or args.csv:
        print("--json/--csv apply to single experiments; 'run all' writes "
              "per-experiment JSON and text under --out DIR", file=sys.stderr)
        return 2
    try:
        jobs = _resolve_jobs(args.jobs)
        shard = (parse_shard(args.shard, source="--shard")
                 if args.shard is not None else env_shard())
        manifest = build_manifest(keys=args.experiments,
                                  scale=_resolve_scale(args.scale))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = manifest.describe()
    print(f"manifest {summary['manifest_hash'][:12]}… "
          f"({summary['unique_cases']} unique cases from "
          f"{summary['planned_cases']} planned across "
          f"{len(summary['experiments'])} experiments, "
          f"{summary['deduped_cases']} deduped)")

    if shard is not None:
        out_dir = args.out or "repro-out"
        owned = manifest.shard_cases(shard)
        caseless = manifest.shard_caseless(shard)
        print(f"shard {shard}: {len(owned)} case(s), "
              f"{len(caseless)} caseless experiment(s)")
        path = execute_shard(manifest, shard, out_dir, jobs=jobs)
        print(f"shard artifact written to {path}")
        return 0

    results = run_serial(manifest, jobs=jobs, out_dir=args.out)
    for key in manifest.keys:
        print(results[key].render())
        print()
    if args.out:
        print(f"figures/tables written to {args.out}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .experiments.manifest import build_manifest
    from .experiments.pipeline import load_artifact, merge_artifacts
    from .experiments.scaling import ExperimentScale

    try:
        first = load_artifact(args.artifacts[0])
        manifest = build_manifest(keys=first["experiments"],
                                  scale=ExperimentScale(**first["scale"]))
        results = merge_artifacts(args.artifacts, manifest, out_dir=args.out)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    print(f"merged {len(args.artifacts)} shard artifact(s): every one of the "
          f"{len(manifest.unique_cases())} planned cases was executed exactly "
          "once across the shards")
    for key in manifest.keys:
        print(results[key].render())
        print()
    if args.out:
        print(f"figures/tables written to {args.out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import render_table
    from .experiments.manifest import build_manifest

    try:
        manifest = build_manifest(keys=args.experiments,
                                  scale=_resolve_scale(args.scale))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = manifest.describe()
    if args.hash:
        print(f"{summary['engine']}:{summary['manifest_hash']}")
        return 0
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [[key, count if count else "(runs whole at shard time)"]
            for key, count in summary["experiments"].items()]
    rows.append(["total planned", summary["planned_cases"]])
    rows.append(["unique after dedupe", summary["unique_cases"]])
    print(render_table(["experiment", "cases"], rows,
                       title=f"Manifest {summary['manifest_hash'][:12]}… "
                             f"(engine {summary['engine']})"))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import ALL_ATTACKS, run_attack

    if args.attack not in ALL_ATTACKS:
        print(f"unknown attack {args.attack!r}; "
              f"try: {', '.join(sorted(ALL_ATTACKS))}", file=sys.stderr)
        return 2
    result = run_attack(args.attack, args.mechanism, smt=args.smt,
                        iterations=args.iterations, predictor=args.predictor)
    rows = [
        ["attack", result.attack],
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "single-threaded"],
        ["iterations", result.iterations],
        ["successes", result.successes],
        ["success rate", f"{100 * result.success_rate:.2f}%"],
        ["chance level", f"{100 * result.chance_level:.2f}%"],
        ["advantage", f"{100 * result.advantage:.2f}%"],
    ]
    print(render_table(["field", "value"], rows))
    return 0


def _cmd_leakage(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .security.leakage import leakage_bandwidth, leakage_report

    report = leakage_report(args.mechanisms, trials=args.trials, smt=args.smt)
    rows = []
    for mechanism, channels in report.items():
        for channel, estimate in channels.items():
            rows.append([
                mechanism, channel,
                f"{estimate.mutual_information_bits:.4f}",
                f"{100 * estimate.guess_accuracy:.1f}%",
                f"{leakage_bandwidth(estimate):.1f}",
            ])
    print(render_table(
        ["mechanism", "channel", "MI (bits/trial)", "guess accuracy",
         "bandwidth (bits/s)"], rows,
        title=f"Leakage over {args.trials} trials "
              f"({'SMT' if args.smt else 'single-threaded'} scenario)"))
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import run_covert_channel

    result = run_covert_channel(args.mechanism, payload_bits=args.bits,
                                smt=args.smt)
    rows = [
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "time-shared"],
        ["bits sent", result.bits_sent],
        ["bit error rate", f"{100 * result.bit_error_rate:.1f}%"],
        ["capacity", f"{result.capacity_bits_per_symbol:.3f} bits/symbol"],
        ["bandwidth", f"{result.bandwidth_bits_per_second:,.0f} bits/s"],
    ]
    print(render_table(["field", "value"], rows,
                       title="PHT covert channel"))
    return 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .hwcost import btb_cost, tage_pht_cost

    btb = btb_cost(args.btb, args.ways)
    pht = tage_pht_cost(args.pht, args.tables)
    rows = [
        [f"BTB {args.ways}w{args.btb}", f"{100 * btb.timing_overhead:.2f}%",
         f"{100 * btb.area_overhead:.2f}%"],
        [f"TAGE PHT {args.pht}x{args.tables}", f"{100 * pht.timing_overhead:.2f}%",
         f"{100 * pht.area_overhead:.2f}%"],
    ]
    print(render_table(["structure", "timing overhead", "area overhead"], rows,
                       title="Noisy-XOR-BP hardware cost estimate (Table 5 model)"))
    return 0


#: Experiments included in the default ``report`` run: the cheap, headline set.
_DEFAULT_REPORT_EXPERIMENTS = ["table2", "table3", "table5", "poc_attacks",
                               "figure7", "figure8", "figure9"]


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import PAPER_EXPECTATIONS, ReproductionReport
    from .experiments import EXPERIMENTS

    if _env_jobs_error():
        return 2
    keys = args.experiments if args.experiments else list(_DEFAULT_REPORT_EXPERIMENTS)
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    report = ReproductionReport(title="Reproduction report")
    for key in keys:
        result = EXPERIMENTS[key](scale)
        if key in PAPER_EXPECTATIONS:
            report.add_result(key, result)
        print(result.render())
        print()
    markdown = report.to_markdown()
    print(markdown)
    if args.output:
        report.save(args.output)
        print(f"Markdown report written to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "leakage":
        return _cmd_leakage(args)
    if args.command == "covert":
        return _cmd_covert(args)
    if args.command == "hwcost":
        return _cmd_hwcost(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.error(f"unhandled command {args.command!r}")
    return 2
