"""Command-line interface.

Exposes the package's main entry points without writing any Python::

    python -m repro list                         # what can be reproduced
    python -m repro run figure7 --json out.json  # regenerate one artefact
    python -m repro run all --jobs 4 --out out/  # the whole paper, one pipeline
    python -m repro run all --repetitions 3 --out out/  # mean ± CI over 3 seeds
    python -m repro run all --shard 0/4 --out out/   # one shard of a fleet
    python -m repro merge --out merged out/shard-*.json  # assemble the fleet
    python -m repro plan --hash                  # manifest digest (CI cache key)
    python -m repro store export --out store.json    # publish cached results
    python -m repro store ingest shard-*.json        # reuse another machine's
    python -m repro serve --dir store/ --port 8378   # simulation service
    python -m repro submit --experiments figure1     # -> job id on stdout
    python -m repro watch job-0001-ab12cd34          # stream to completion
    python -m repro fetch job-0001-ab12cd34 --out served/
    python -m repro attack branchscope --mechanism noisy_xor_bp
    python -m repro leakage --mechanisms baseline noisy_xor_bp
    python -m repro hwcost --btb 256 --ways 2 --pht 4096
    python -m repro report --output results.md   # paper-vs-measured summary

Every subcommand prints human-readable text to stdout; ``run``, ``merge`` and
``report`` can additionally write machine-readable artefacts.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Lightweight Isolation Mechanism for "
                    "Secure Branch Predictors' (DAC 2021).")
    subparsers = parser.add_subparsers(dest="command", metavar="command")

    subparsers.add_parser("list", help="list reproducible experiments, attacks "
                                       "and protection presets")

    run = subparsers.add_parser(
        "run", help="run one experiment (table/figure), or 'all' for the "
                    "whole sharded reproduction pipeline")
    run.add_argument("experiment", help="experiment key (e.g. figure7, table5) "
                                        "or 'all' for the full manifest")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-length scale factor (default from REPRO_SCALE)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the result as JSON")
    run.add_argument("--csv", default=None, metavar="PATH",
                     help="also write the figure series as CSV")
    run.add_argument("--experiments", nargs="+", default=None, metavar="KEY",
                     help="with 'all': subset of experiment keys to plan")
    run.add_argument("--bench-set", nargs="+", default=None, metavar="SELECTOR",
                     help="with 'all': benchmark-set selectors (int, fp, "
                          "large_footprint, indirect_heavy, all, traces, or "
                          "'+'-joined unions) planned as bench:<selector> "
                          "experiments alongside --experiments")
    run.add_argument("--trace-dir", default=None, metavar="DIR",
                     help="trace-corpus directory registered as trace:* "
                          "workloads (default from REPRO_TRACE_DIR)")
    run.add_argument("--shard", default=None, metavar="I/N",
                     help="with 'all': execute only this shard of the global "
                          "case manifest (0-based, e.g. 0/4; default from "
                          "REPRO_SHARD) and write a shard artifact")
    run.add_argument("--jobs", default=None, metavar="N",
                     help="worker processes (default from REPRO_JOBS)")
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="execution backend (python|numpy; default from "
                          "REPRO_BACKEND, falling back to the bit-exact "
                          "python reference)")
    run.add_argument("--repetitions", default=None, metavar="N",
                     help="with 'all': run every planned case N times under "
                          "shifted seeds and fold figures into mean ± 95%% CI "
                          "(default 1: single-trajectory, bit-identical to "
                          "the historical pipeline)")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="with 'all': output directory (shard artifact, or "
                          "merged figures/tables for unsharded runs)")
    run.add_argument("--keep-going", action="store_true",
                     help="with 'all': when cases fail permanently, finish "
                          "every healthy case and write a machine-readable "
                          "failure manifest (exit 3) instead of aborting")
    run.add_argument("--resume", default=None, metavar="DIR",
                     help="with 'all --shard': resume a killed shard from "
                          "DIR's journal, re-simulating only unfinished "
                          "cases (merged output stays bit-identical to an "
                          "uninterrupted run)")

    merge = subparsers.add_parser(
        "merge", help="merge 'run all --shard' artifacts into final "
                      "figures/tables, asserting every planned case was "
                      "executed exactly once across the shards")
    merge.add_argument("artifacts", nargs="+", metavar="SHARD_JSON",
                       help="shard artifact files written by run all --shard")
    merge.add_argument("--out", default=None, metavar="DIR",
                       help="write merged per-experiment JSON/text here")

    plan = subparsers.add_parser(
        "plan", help="plan the global case manifest without running anything")
    plan.add_argument("--experiments", nargs="+", default=None, metavar="KEY",
                      help="subset of experiment keys to plan")
    plan.add_argument("--bench-set", nargs="+", default=None, metavar="SELECTOR",
                      help="benchmark-set selectors planned as bench:<selector> "
                           "experiments alongside --experiments")
    plan.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="trace-corpus directory registered as trace:* "
                           "workloads (default from REPRO_TRACE_DIR)")
    plan.add_argument("--scale", type=float, default=None,
                      help="trace-length scale factor")
    plan.add_argument("--repetitions", default=None, metavar="N",
                      help="seed repetitions per case (part of the manifest "
                           "hash: a repetition run can never collide with a "
                           "single-trajectory cache)")
    plan.add_argument("--hash", action="store_true",
                      help="print only '<engine>:<manifest hash>' (CI cache key)")
    plan.add_argument("--json", action="store_true",
                      help="print the full manifest summary as JSON")

    store = subparsers.add_parser(
        "store", help="content-addressed result store: exchange finished "
                      "simulation results between machines and CI shards")
    store_sub = store.add_subparsers(dest="store_command", metavar="operation")
    store_dir_help = ("store directory (default from REPRO_STORE_DIR)")
    ingest = store_sub.add_parser(
        "ingest", help="import case results from shard artifacts, store "
                       "exports, or remote store URLs (same-engine only, "
                       "digest-checked)")
    ingest.add_argument("artifacts", nargs="+", metavar="ARTIFACT",
                        help="files written by 'run all --shard' / 'store "
                             "export', or http(s) URLs of a remote "
                             "service's /v1/store/export endpoint")
    ingest.add_argument("--dir", default=None, metavar="DIR",
                        help=store_dir_help)
    export = store_sub.add_parser(
        "export", help="write every current-engine entry as one exchange "
                       "artifact (ingestable anywhere)")
    export.add_argument("--out", required=True, metavar="PATH",
                        help="output artifact path")
    export.add_argument("--dir", default=None, metavar="DIR",
                        help=store_dir_help)
    export.add_argument("--manifest", action="append", default=None,
                        metavar="HASH",
                        help="export only entries owned by this registered "
                             "manifest (repeatable; unions)")
    gc = store_sub.add_parser(
        "gc", help="delete entries from stale engine revisions (and, with "
                   "--manifest-hash, from superseded manifests)")
    gc.add_argument("--dir", default=None, metavar="DIR", help=store_dir_help)
    gc.add_argument("--manifest-hash", action="append", default=None,
                    metavar="HASH",
                    help="also prune current-engine entries owned by none "
                         "of these registered manifests (repeatable; "
                         "shared entries are retained)")
    verify = store_sub.add_parser(
        "verify", help="audit every entry (schema, key/engine filing, "
                       "content digest)")
    verify.add_argument("--dir", default=None, metavar="DIR",
                        help=store_dir_help)

    serve = subparsers.add_parser(
        "serve", help="run the store-backed simulation service: an HTTP "
                      "job queue scheduling manifest submissions over the "
                      "executor with store-backed dedupe")
    serve.add_argument("--host", default=None, metavar="ADDR",
                       help="bind address (default from REPRO_SERVE_HOST, "
                            "else 127.0.0.1)")
    serve.add_argument("--port", default=None, metavar="N",
                       help="TCP port (default from REPRO_SERVE_PORT; 0 "
                            "picks a free port)")
    serve.add_argument("--dir", default=None, metavar="DIR",
                       help="result store directory every job dedupes "
                            "against and publishes into (default from "
                            "REPRO_STORE_DIR; required)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="per-job output root (default from "
                            "REPRO_SERVE_DATA_DIR, else repro-serve-data)")
    serve.add_argument("--workers", default=None, metavar="N",
                       help="concurrent job worker threads (default from "
                            "REPRO_SERVE_WORKERS, else 1)")
    serve.add_argument("--jobs", default=None, metavar="N",
                       help="worker processes per job (default from "
                            "REPRO_JOBS)")
    serve.add_argument("--backend", default=None, metavar="NAME",
                       help="execution backend for the whole service")

    url_help = ("service URL (default from REPRO_SERVE_URL, else "
                "http://127.0.0.1:<default port>)")
    submit = subparsers.add_parser(
        "submit", help="submit a manifest to a running service; prints the "
                       "job id on stdout")
    submit.add_argument("--url", default=None, metavar="URL", help=url_help)
    submit.add_argument("--experiments", nargs="+", default=None,
                        metavar="KEY",
                        help="subset of experiment keys (the full registry "
                             "when omitted)")
    submit.add_argument("--bench-set", nargs="+", default=None,
                        metavar="SELECTOR",
                        help="benchmark-set selectors submitted alongside "
                             "--experiments")
    submit.add_argument("--scale", type=float, default=None,
                        help="trace-length scale factor, applied on top of "
                             "the server's base scale")
    submit.add_argument("--repetitions", default=None, metavar="N",
                        help="seed repetitions per case")
    submit.add_argument("--backend", default=None, metavar="NAME",
                        help="assert the service executes this backend "
                             "(results are backend-invariant; mismatches "
                             "are rejected)")

    watch = subparsers.add_parser(
        "watch", help="stream a job's events to completion; prints the "
                      "stats line (exit 0 done, 1 failed)")
    watch.add_argument("job", metavar="JOB_ID", help="job id from submit")
    watch.add_argument("--url", default=None, metavar="URL", help=url_help)

    fetch = subparsers.add_parser(
        "fetch", help="download a finished job's figures/tables (the same "
                      "bytes a serial 'run all --out' writes)")
    fetch.add_argument("job", metavar="JOB_ID", help="job id from submit")
    fetch.add_argument("--out", required=True, metavar="DIR",
                       help="output directory")
    fetch.add_argument("--url", default=None, metavar="URL", help=url_help)

    attack = subparsers.add_parser("attack", help="run one attack against one "
                                                  "protection preset")
    attack.add_argument("attack", help="attack name, e.g. branchscope or sbpa")
    attack.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    attack.add_argument("--iterations", type=int, default=1000,
                        help="attack iterations (default: 1000)")
    attack.add_argument("--smt", action="store_true",
                        help="concurrent-attacker (SMT) scenario")
    attack.add_argument("--predictor", default="bimodal",
                        help="direction predictor of the victim core")

    leakage = subparsers.add_parser("leakage", help="measure channel leakage "
                                                    "(mutual information)")
    leakage.add_argument("--mechanisms", nargs="+",
                         default=["baseline", "complete_flush", "noisy_xor_bp"],
                         help="protection presets to compare")
    leakage.add_argument("--trials", type=int, default=300,
                         help="prime-victim-probe trials per channel")
    leakage.add_argument("--smt", action="store_true",
                         help="concurrent-attacker (SMT) scenario")

    covert = subparsers.add_parser("covert", help="measure the PHT covert-channel "
                                                  "capacity under one preset")
    covert.add_argument("--mechanism", default="baseline",
                        help="protection preset (default: baseline)")
    covert.add_argument("--bits", type=int, default=256,
                        help="payload bits to transmit (default: 256)")
    covert.add_argument("--smt", action="store_true",
                        help="concurrent sender/receiver (SMT) scenario")

    hwcost = subparsers.add_parser("hwcost", help="estimate Noisy-XOR-BP "
                                                  "area/timing overhead")
    hwcost.add_argument("--btb", type=int, default=256,
                        help="BTB entries per way (default: 256)")
    hwcost.add_argument("--ways", type=int, default=2,
                        help="BTB associativity (default: 2)")
    hwcost.add_argument("--pht", type=int, default=4096,
                        help="TAGE PHT entries per table (default: 4096)")
    hwcost.add_argument("--tables", type=int, default=6,
                        help="number of TAGE tables (default: 6)")

    report = subparsers.add_parser("report", help="run the headline experiments "
                                                  "and write a paper-vs-measured "
                                                  "Markdown or HTML report")
    report.add_argument("--experiments", nargs="+", default=None,
                        help="experiment keys to include (default: the quick "
                             "set; with --html, the full registry)")
    report.add_argument("--scale", type=float, default=None,
                        help="trace-length scale factor")
    report.add_argument("--output", default=None, metavar="PATH",
                        help="write the Markdown report to this file")
    report.add_argument("--html", action="store_true",
                        help="render the self-contained HTML report (figures "
                             "with CI error bars, significance matrices, "
                             "Pareto table, provenance) instead of Markdown")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="HTML output path (default: report.html; "
                             "requires --html)")
    report.add_argument("--repetitions", default=None, metavar="N",
                        help="repeat every case under N shifted seeds and "
                             "report mean ± 95%% CI plus per-seed "
                             "significance tests (requires --html)")
    report.add_argument("--jobs", default=None, metavar="N",
                        help="worker processes for the simulation batch "
                             "(requires --html)")

    return parser


def _cmd_list() -> int:
    from .attacks import ALL_ATTACKS
    from .core import preset_names
    from .experiments import EXPERIMENTS
    from .predictors import DIRECTION_PREDICTORS

    print("Experiments (python -m repro run <key>):")
    for key in sorted(EXPERIMENTS):
        print(f"  {key}")
    print("\nAttacks (python -m repro attack <name>):")
    for name in sorted(ALL_ATTACKS):
        print(f"  {name}")
    print("\nProtection presets (--mechanism):")
    for name in preset_names():
        print(f"  {name}")
    print("\nDirection predictors (--predictor):")
    for name in sorted(DIRECTION_PREDICTORS):
        print(f"  {name}")
    return 0


def _resolve_scale(factor: Optional[float]):
    from .experiments import default_scale, parse_scale_factor

    scale = default_scale()  # raises on a malformed REPRO_SCALE, by name
    if factor is not None:
        scale = scale.scaled_by(parse_scale_factor(factor, source="--scale"))
    return scale


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis.export import save_figure_csv, save_result_json
    from .experiments import EXPERIMENTS

    if _apply_backend_flag(args.backend):
        return 2
    if _apply_trace_dir_flag(args.trace_dir):
        return 2
    if args.experiment == "all":
        return _cmd_run_all(args)
    # 'all'-only flags must never be silently dropped: a user asking for a
    # 3-seed mean must not publish a single-trajectory estimate, and a user
    # asking for a shard/fan-out must not get a serial full run.
    all_only = [name for name, value in (
        ("--repetitions", args.repetitions), ("--shard", args.shard),
        ("--jobs", args.jobs), ("--out", args.out),
        ("--experiments", args.experiments),
        ("--bench-set", args.bench_set),
        ("--keep-going", args.keep_going or None),
        ("--resume", args.resume)) if value is not None]
    if all_only:
        print(f"{', '.join(all_only)} appl"
              f"{'y' if len(all_only) > 1 else 'ies'} to 'run all' only "
              "(single-experiment runs are serial and single-trajectory; "
              "REPRO_JOBS still controls their worker pool)",
              file=sys.stderr)
        return 2
    if _env_exec_error():
        return 2
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    try:
        scale = _resolve_scale(args.scale)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = EXPERIMENTS[args.experiment](scale)
    print(result.render())
    if args.json:
        path = save_result_json(result, args.json)
        print(f"\nJSON written to {path}")
    if args.csv:
        path = save_figure_csv(result, args.csv)
        if path is None:
            print("\n(no figure series to export as CSV)")
        else:
            print(f"\nCSV written to {path}")
    return 0


def _env_exec_error() -> bool:
    """Surface a malformed execution-layer environment knob as a clean error.

    Any command that ends up in :func:`default_executor` would otherwise die
    with an uncaught traceback from deep inside the executor (or worker)
    setup.  Covers ``REPRO_JOBS``, ``REPRO_SCALE``, ``REPRO_CASE_TIMEOUT``,
    ``REPRO_RETRIES``, ``REPRO_RETRY_BACKOFF``, ``REPRO_FAULT_SPEC`` and
    ``REPRO_BACKEND``.
    """
    from .engine import env_backend
    from .experiments.executor import (
        env_case_timeout,
        env_jobs,
        env_retries,
        env_retry_backoff,
    )
    from .experiments.scaling import env_scale_factor
    from .testing.faults import active_clauses

    for check in (env_jobs, env_scale_factor, env_case_timeout, env_retries,
                  env_retry_backoff, active_clauses, env_backend):
        try:
            check()
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return True
    return False


def _apply_backend_flag(raw) -> bool:
    """Validate ``--backend`` and export it as ``REPRO_BACKEND``.

    The flag is exported to the environment (rather than threaded through
    the planning layer) so executor worker processes inherit the same
    backend selection; backends never affect results, caching or store
    keys, so this is purely an execution-strategy knob.  Returns True
    (after printing the named error) when the value is rejected.
    """
    if raw is None:
        return False
    from .engine import BACKEND_VAR, parse_backend

    try:
        os.environ[BACKEND_VAR] = parse_backend(raw, source="--backend")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return True
    return False


def _apply_trace_dir_flag(raw) -> bool:
    """Validate ``--trace-dir`` and export it as ``REPRO_TRACE_DIR``.

    Exported to the environment (like ``--backend``) so executor worker
    processes resolve ``trace:*`` workloads against the same corpus.
    Returns True (after printing the named error) when the directory does
    not exist.
    """
    if raw is None:
        return False
    from .workloads.registry import TRACE_DIR_VAR

    if not os.path.isdir(raw):
        print(f"--trace-dir: {raw!r} is not a directory", file=sys.stderr)
        return True
    os.environ[TRACE_DIR_VAR] = raw
    return False


def _manifest_keys(experiments, bench_sets):
    """Combine ``--experiments`` and ``--bench-set`` into manifest keys.

    ``None`` (plan everything) only when neither flag was given; a bare
    ``--bench-set`` plans just the requested selectors.
    """
    if experiments is None and bench_sets is None:
        return None
    keys = list(experiments) if experiments else []
    if bench_sets:
        keys.extend(f"bench:{selector}" for selector in bench_sets)
    return keys


def _resolve_jobs(raw) -> int:
    # A malformed --jobs or REPRO_JOBS must fail here, before any planning or
    # pool setup, with the offending setting named.
    from .experiments.executor import env_jobs, parse_jobs

    if raw is None:
        return env_jobs()
    return parse_jobs(raw, source="--jobs")


def _stats_line(manifest, executor) -> str:
    """One assertable line of executor statistics for a ``run all``.

    CI's store-replay job greps this to prove a 100% store hit rate: every
    unique case served from the store, nothing simulated.
    """
    cache = executor.cache
    return (f"cases: {len(manifest.unique_cases())} unique, "
            f"{executor.simulated} simulated, "
            f"{cache.store_hits} store hit(s)")


def _print_failures(failures) -> None:
    for failure in failures:
        kind = "timed out" if failure.get("timed_out") else "failed"
        print(f"FAILED {failure['case']} [{failure['key'][:12]}…] {kind} "
              f"after {failure['attempts']} attempt(s): {failure['error']}: "
              f"{failure['message']}", file=sys.stderr)


def _cmd_run_all(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from .experiments.executor import (
        ExecutionError,
        RunResultCache,
        SweepExecutor,
    )
    from .experiments.manifest import (
        build_manifest,
        env_shard,
        parse_repetitions,
        parse_shard,
    )
    from .experiments.pipeline import (
        execute_shard,
        failure_manifest_path,
        run_serial,
        write_failure_manifest,
    )

    if args.json or args.csv:
        print("--json/--csv apply to single experiments; 'run all' writes "
              "per-experiment JSON and text under --out DIR", file=sys.stderr)
        return 2
    if _env_exec_error():
        return 2
    try:
        jobs = _resolve_jobs(args.jobs)
        shard = (parse_shard(args.shard, source="--shard")
                 if args.shard is not None else env_shard())
        repetitions = (parse_repetitions(args.repetitions)
                       if args.repetitions is not None else 1)
        manifest = build_manifest(keys=_manifest_keys(args.experiments,
                                                      args.bench_set),
                                  scale=_resolve_scale(args.scale),
                                  repetitions=repetitions)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.resume is not None and shard is None:
        print("--resume applies to sharded runs (--shard I/N): only shard "
              "executions are journaled; unsharded runs resume implicitly "
              "through REPRO_CACHE_DIR/REPRO_STORE_DIR", file=sys.stderr)
        return 2
    summary = manifest.describe()
    print(f"manifest {summary['manifest_hash'][:12]}… "
          f"({summary['unique_cases']} unique cases from "
          f"{summary['planned_cases']} planned across "
          f"{len(summary['experiments'])} experiments, "
          f"{summary['repetitions']} repetition(s), "
          f"{summary['deduped_cases']} deduped)")

    if shard is not None:
        if args.resume is not None and args.out is not None \
                and os.path.abspath(args.resume) != os.path.abspath(args.out):
            print("--resume DIR and --out DIR disagree; the journal lives in "
                  "the run's output directory, so pass just --resume DIR",
                  file=sys.stderr)
            return 2
        out_dir = args.out or args.resume or "repro-out"
        owned = manifest.shard_cases(shard)
        caseless = manifest.shard_caseless(shard)
        print(f"shard {shard}: {len(owned)} case(s), "
              f"{len(caseless)} caseless experiment(s)")
        cache = RunResultCache()
        try:
            path = execute_shard(manifest, shard, out_dir, jobs=jobs,
                                 cache=cache, keep_going=args.keep_going,
                                 resume=args.resume is not None)
        except ExecutionError as exc:
            print(f"run failed: {exc}", file=sys.stderr)
            print(f"every completed case is journaled; rerun with "
                  f"--resume {out_dir} to continue from it", file=sys.stderr)
            return 1
        except (OSError, ValueError) as exc:
            # e.g. a store digest conflict (results changed without an
            # ENGINE_VERSION bump) — a designed tripwire, not a crash.
            print(f"run failed: {exc}", file=sys.stderr)
            return 2
        print(f"shard cache: {cache.hits} hit(s), "
              f"{cache.store_hits} from result store")
        print(f"shard artifact written to {path}")
        failures_path = failure_manifest_path(out_dir, shard)
        if os.path.exists(failures_path):
            with open(failures_path, "r", encoding="utf-8") as handle:
                report = _json.load(handle)
            _print_failures(report.get("failures", []))
            for key, error in sorted(
                    report.get("failed_experiments", {}).items()):
                print(f"FAILED experiment {key}: {error}", file=sys.stderr)
            print(f"completed with failures; failure manifest written to "
                  f"{failures_path}", file=sys.stderr)
            return 3
        return 0

    executor = SweepExecutor(jobs=jobs, cache=RunResultCache(),
                             keep_going=args.keep_going)
    try:
        results = run_serial(manifest, out_dir=args.out, executor=executor)
    except ExecutionError as exc:
        print(f"run failed: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"run failed: {exc}", file=sys.stderr)
        return 2
    if executor.failures:
        # keep-going: every healthy case finished (and is cached for a
        # rerun), but figures cannot assemble around the holes.
        print(_stats_line(manifest, executor))
        _print_failures([failure.to_dict() for failure in executor.failures])
        if args.out:
            path = write_failure_manifest(args.out, None, executor.failures)
            print(f"completed with failures; failure manifest written to "
                  f"{path}", file=sys.stderr)
        print(f"{len(executor.failures)} case(s) failed permanently; "
              "figures/tables were not assembled", file=sys.stderr)
        return 3
    for key in manifest.keys:
        print(results[key].render())
        print()
    print(_stats_line(manifest, executor))
    if args.out:
        print(f"figures/tables written to {args.out}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .experiments.manifest import build_manifest
    from .experiments.pipeline import load_artifact, merge_artifacts
    from .experiments.scaling import ExperimentScale

    try:
        first = load_artifact(args.artifacts[0])
        manifest = build_manifest(keys=first["experiments"],
                                  scale=ExperimentScale(**first["scale"]),
                                  repetitions=first.get("repetitions", 1))
        results = merge_artifacts(args.artifacts, manifest, out_dir=args.out)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    print(f"merged {len(args.artifacts)} shard artifact(s): every one of the "
          f"{len(manifest.unique_cases())} planned cases was executed exactly "
          "once across the shards")
    for key in manifest.keys:
        print(results[key].render())
        print()
    if args.out:
        print(f"figures/tables written to {args.out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import render_table
    from .experiments.manifest import build_manifest, parse_repetitions

    if _apply_trace_dir_flag(args.trace_dir):
        return 2
    try:
        repetitions = (parse_repetitions(args.repetitions)
                       if args.repetitions is not None else 1)
        manifest = build_manifest(keys=_manifest_keys(args.experiments,
                                                      args.bench_set),
                                  scale=_resolve_scale(args.scale),
                                  repetitions=repetitions)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = manifest.describe()
    if args.hash:
        print(f"{summary['engine']}:{summary['manifest_hash']}")
        return 0
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [[key, count if count else "(runs whole at shard time)"]
            for key, count in summary["experiments"].items()]
    rows.append(["repetitions", summary["repetitions"]])
    rows.append(["total planned", summary["planned_cases"]])
    rows.append(["unique after dedupe", summary["unique_cases"]])
    print(render_table(["experiment", "cases"], rows,
                       title=f"Manifest {summary['manifest_hash'][:12]}… "
                             f"(engine {summary['engine']})"))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .experiments.executor import ENGINE_VERSION
    from .experiments.store import ResultStore

    if args.store_command is None:
        print("store requires an operation: ingest, export, gc or verify",
              file=sys.stderr)
        return 2
    try:
        store = ResultStore(args.dir)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.store_command == "ingest":
        total_added = 0
        total_skipped = 0
        for path in args.artifacts:
            try:
                # Anything URL-shaped goes through ingest_url, so an
                # unsupported scheme fails with the scheme named instead of
                # a confusing file-not-found for "ftp://...".
                if "://" in path:
                    added, skipped = store.ingest_url(path)
                else:
                    added, skipped = store.ingest(path)
            except (OSError, ValueError) as exc:
                print(f"ingest failed: {exc}", file=sys.stderr)
                return 2
            total_added += added
            total_skipped += skipped
            print(f"{path}: {added} ingested, {skipped} already present")
        print(f"store {store.directory}: {total_added} entr(ies) added, "
              f"{total_skipped} already present, {len(store)} total for "
              f"engine {ENGINE_VERSION}")
        return 0

    if args.store_command == "export":
        try:
            path, count = store.export(args.out,
                                       manifest_hashes=args.manifest)
        except (OSError, ValueError) as exc:
            print(f"export failed: {exc}", file=sys.stderr)
            return 2
        scope = (f" ({len(args.manifest)} manifest(s))"
                 if args.manifest else "")
        print(f"exported {count} entr(ies) for engine {ENGINE_VERSION}"
              f"{scope} to {path}")
        return 0

    if args.store_command == "gc":
        import os

        from .experiments.executor import sweep_tmp_files

        try:
            removed = store.gc(manifest_hashes=args.manifest_hash)
        except (OSError, ValueError) as exc:
            print(f"gc failed: {exc}", file=sys.stderr)
            return 2
        swept = store.sweep_tmp()
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir and os.path.isdir(cache_dir):
            # Killed writers leak the same *.tmp.<pid> staging files into
            # the disk cache; gc is the natural place to reclaim both.
            swept += sweep_tmp_files(cache_dir)
        stale = "stale engine revisions"
        if args.manifest_hash:
            stale += " and superseded manifests"
        print(f"gc removed {removed} entr(ies) from {stale} "
              f"and {len(swept)} orphaned tmp file(s); "
              f"{len(store)} kept for engine {ENGINE_VERSION}")
        return 0

    if args.store_command == "verify":
        report = store.verify()
        engines = ", ".join(f"{engine}: {count}"
                            for engine, count in report["engines"].items()) \
            or "(empty)"
        print(f"store {report['directory']}: {report['entries']} entr(ies) "
              f"[{engines}]")
        if report["quarantined"]:
            print(f"quarantine holds {report['quarantined']} damaged "
                  f"entr(ies) under {store.quarantine_dir}", file=sys.stderr)
        for path, problem in report["corrupt"]:
            print(f"CORRUPT {path}: {problem}", file=sys.stderr)
        if report["corrupt"]:
            print(f"verify failed: {len(report['corrupt'])} corrupt "
                  "entr(ies)", file=sys.stderr)
            return 2
        print("verify ok: every entry matches its content digest")
        return 0

    print(f"unknown store operation {args.store_command!r}", file=sys.stderr)
    return 2


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import ALL_ATTACKS, run_attack

    if args.attack not in ALL_ATTACKS:
        print(f"unknown attack {args.attack!r}; "
              f"try: {', '.join(sorted(ALL_ATTACKS))}", file=sys.stderr)
        return 2
    result = run_attack(args.attack, args.mechanism, smt=args.smt,
                        iterations=args.iterations, predictor=args.predictor)
    rows = [
        ["attack", result.attack],
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "single-threaded"],
        ["iterations", result.iterations],
        ["successes", result.successes],
        ["success rate", f"{100 * result.success_rate:.2f}%"],
        ["chance level", f"{100 * result.chance_level:.2f}%"],
        ["advantage", f"{100 * result.advantage:.2f}%"],
    ]
    print(render_table(["field", "value"], rows))
    return 0


def _cmd_leakage(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .security.leakage import leakage_bandwidth, leakage_report

    report = leakage_report(args.mechanisms, trials=args.trials, smt=args.smt)
    rows = []
    for mechanism, channels in report.items():
        for channel, estimate in channels.items():
            rows.append([
                mechanism, channel,
                f"{estimate.mutual_information_bits:.4f}",
                f"{100 * estimate.guess_accuracy:.1f}%",
                f"{leakage_bandwidth(estimate):.1f}",
            ])
    print(render_table(
        ["mechanism", "channel", "MI (bits/trial)", "guess accuracy",
         "bandwidth (bits/s)"], rows,
        title=f"Leakage over {args.trials} trials "
              f"({'SMT' if args.smt else 'single-threaded'} scenario)"))
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .attacks import run_covert_channel

    result = run_covert_channel(args.mechanism, payload_bits=args.bits,
                                smt=args.smt)
    rows = [
        ["mechanism", result.mechanism],
        ["scenario", "SMT" if result.smt else "time-shared"],
        ["bits sent", result.bits_sent],
        ["bit error rate", f"{100 * result.bit_error_rate:.1f}%"],
        ["capacity", f"{result.capacity_bits_per_symbol:.3f} bits/symbol"],
        ["bandwidth", f"{result.bandwidth_bits_per_second:,.0f} bits/s"],
    ]
    print(render_table(["field", "value"], rows,
                       title="PHT covert channel"))
    return 0


def _cmd_hwcost(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .hwcost import btb_cost, tage_pht_cost

    btb = btb_cost(args.btb, args.ways)
    pht = tage_pht_cost(args.pht, args.tables)
    rows = [
        [f"BTB {args.ways}w{args.btb}", f"{100 * btb.timing_overhead:.2f}%",
         f"{100 * btb.area_overhead:.2f}%"],
        [f"TAGE PHT {args.pht}x{args.tables}", f"{100 * pht.timing_overhead:.2f}%",
         f"{100 * pht.area_overhead:.2f}%"],
    ]
    print(render_table(["structure", "timing overhead", "area overhead"], rows,
                       title="Noisy-XOR-BP hardware cost estimate (Table 5 model)"))
    return 0


#: Experiments included in the default ``report`` run: the cheap, headline set.
_DEFAULT_REPORT_EXPERIMENTS = ["table2", "table3", "table5", "poc_attacks",
                               "figure7", "figure8", "figure9"]


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import PAPER_EXPECTATIONS, ReproductionReport
    from .experiments import EXPERIMENTS

    if _env_exec_error():
        return 2
    if args.html:
        return _cmd_report_html(args)
    html_only = [name for name, value in (
        ("--out", args.out), ("--repetitions", args.repetitions),
        ("--jobs", args.jobs)) if value is not None]
    if html_only:
        print(f"{', '.join(html_only)} appl"
              f"{'y' if len(html_only) > 1 else 'ies'} to --html reports "
              "only (the Markdown report is a quick single-seed pass; use "
              "--output PATH for its file)", file=sys.stderr)
        return 2
    keys = args.experiments if args.experiments else list(_DEFAULT_REPORT_EXPERIMENTS)
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    report = ReproductionReport(title="Reproduction report")
    for key in keys:
        result = EXPERIMENTS[key](scale)
        if key in PAPER_EXPECTATIONS:
            report.add_result(key, result)
        print(result.render())
        print()
    markdown = report.to_markdown()
    print(markdown)
    if args.output:
        report.save(args.output)
        print(f"Markdown report written to {args.output}")
    return 0


def _report_provenance(manifest, stats_line: str) -> "Dict[str, str]":
    """The provenance block embedded at the top of the HTML report."""
    summary = manifest.describe()
    return {
        "Engine": summary["engine"],
        "Manifest": summary["manifest_hash"],
        "Experiments": ", ".join(summary["experiments"]),
        "Repetitions": str(summary["repetitions"]),
        "Planned cases": (f"{summary['planned_cases']} planned, "
                          f"{summary['unique_cases']} unique, "
                          f"{summary['deduped_cases']} deduped"),
        "Executor": stats_line,
    }


def _cmd_report_html(args: argparse.Namespace) -> int:
    """``repro report --html``: the decision-grade self-contained report.

    Runs the requested experiments (the **full** registry by default, so the
    embedded manifest hash matches a ``repro run all`` of the same settings)
    through the ordinary manifest/executor pipeline — store-warm runs
    simulate nothing — then renders every figure with CI error bars,
    mechanism significance matrices, the Pareto table and the provenance
    block into one HTML file with no external fetches.
    """
    from .analysis.htmlreport import build_html_report
    from .experiments.executor import (
        ExecutionError,
        RunResultCache,
        SweepExecutor,
    )
    from .experiments.manifest import build_manifest, parse_repetitions
    from .experiments.pipeline import run_serial

    if args.output:
        print("--output writes the Markdown report; use --out PATH for the "
              "HTML report", file=sys.stderr)
        return 2
    try:
        jobs = _resolve_jobs(args.jobs)
        repetitions = (parse_repetitions(args.repetitions)
                       if args.repetitions is not None else 1)
        manifest = build_manifest(keys=args.experiments,
                                  scale=_resolve_scale(args.scale),
                                  repetitions=repetitions)
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = manifest.describe()
    print(f"manifest {summary['manifest_hash'][:12]}… "
          f"({summary['unique_cases']} unique cases, "
          f"{summary['repetitions']} repetition(s))")
    executor = SweepExecutor(jobs=jobs, cache=RunResultCache())
    try:
        results = run_serial(manifest, executor=executor)
    except ExecutionError as exc:
        print(f"report run failed: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"report run failed: {exc}", file=sys.stderr)
        return 2
    stats = _stats_line(manifest, executor)
    print(stats)
    ordered = {key: results[key] for key in manifest.keys}
    document = build_html_report(ordered,
                                 _report_provenance(manifest, stats))
    out_path = args.out or "report.html"
    parent = os.path.dirname(os.path.abspath(out_path))
    os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"HTML report written to {out_path}")
    return 0


def _service_url(args: argparse.Namespace) -> str:
    """Resolve the service URL: ``--url`` > ``REPRO_SERVE_URL`` > localhost."""
    from .service import DEFAULT_PORT

    if getattr(args, "url", None):
        return args.url
    return (os.environ.get("REPRO_SERVE_URL")
            or f"http://127.0.0.1:{DEFAULT_PORT}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .experiments.executor import parse_jobs
    from .experiments.store import ResultStore
    from .service import DEFAULT_PORT, SimulationService, parse_port

    if _env_exec_error():
        return 2
    if _apply_backend_flag(args.backend):
        return 2
    try:
        store = ResultStore(args.dir)
    except ValueError as exc:
        print(f"{exc} (the service publishes every result it simulates "
              "into the store)", file=sys.stderr)
        return 2
    try:
        if args.port is not None:
            port = parse_port(str(args.port), source="--port")
        elif os.environ.get("REPRO_SERVE_PORT"):
            port = parse_port(os.environ["REPRO_SERVE_PORT"])
        else:
            port = DEFAULT_PORT
        if args.workers is not None:
            workers = parse_jobs(str(args.workers), source="--workers")
        elif os.environ.get("REPRO_SERVE_WORKERS"):
            workers = parse_jobs(os.environ["REPRO_SERVE_WORKERS"],
                                 source="REPRO_SERVE_WORKERS")
        else:
            workers = 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    host = (args.host or os.environ.get("REPRO_SERVE_HOST")
            or "127.0.0.1")
    data_dir = (args.data_dir or os.environ.get("REPRO_SERVE_DATA_DIR")
                or "repro-serve-data")
    jobs = _resolve_jobs(args.jobs)
    service = SimulationService(store, data_dir, host=host, port=port,
                                jobs=jobs, workers=workers)
    print(f"repro serve listening on {service.url} "
          f"(store {store.directory}, data {data_dir}, "
          f"{workers} worker(s) x {jobs} job(s))", flush=True)
    service.serve_forever()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from .experiments.manifest import parse_repetitions
    from .service import ServiceClient, ServiceError

    payload = {}
    if args.experiments:
        payload["experiments"] = list(args.experiments)
    if args.bench_set:
        payload["bench_sets"] = list(args.bench_set)
    if args.scale is not None:
        payload["scale"] = args.scale
    if args.repetitions is not None:
        # Parsed client-side too, for fast feedback with the flag named.
        try:
            payload["repetitions"] = parse_repetitions(
                str(args.repetitions), source="--repetitions")
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.backend:
        payload["backend"] = args.backend
    client = ServiceClient(_service_url(args))
    try:
        document = client.submit(payload)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    # The job id goes to stdout ALONE so scripts can capture it:
    #   JOB=$(repro submit --experiments figure1)
    print(f"job {document['id']}: {document['state']}, "
          f"manifest {document['manifest_hash'][:12]}, "
          f"{document['stats']['unique']} case(s)", file=sys.stderr)
    print(document["id"])
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))

    def on_event(event: dict) -> None:
        kind = event.get("event")
        if kind == "case":
            print(f"  case {event.get('key', '')[:12]}… done",
                  file=sys.stderr)
        elif kind in ("running", "queued", "done", "failed"):
            print(f"job {event.get('job')}: {kind}", file=sys.stderr)

    try:
        document = client.watch(args.job, on_event=on_event)
    except ServiceError as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 2
    print(client.stats_line(document))
    if document["state"] == "failed":
        print(f"job {document['id']} failed: "
              f"{document.get('error') or 'unknown error'}",
              file=sys.stderr)
        _print_failures(document.get("failures") or [])
        return 1
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))
    try:
        written = client.fetch(args.job, args.out)
    except ServiceError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 2
    print(f"fetched {len(written)} file(s) from job {args.job} "
          f"into {args.out}")
    return 0


#: Exit code for an interrupted run (the conventional 128 + SIGINT).
EXIT_INTERRUPTED = 130


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script.

    Exit codes: ``0`` success; ``1`` cases failed permanently (fail-fast);
    ``2`` usage or validation error; ``3`` ``--keep-going`` run completed
    with failures; ``130`` interrupted (Ctrl-C).
    """
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "leakage":
            return _cmd_leakage(args)
        if args.command == "covert":
            return _cmd_covert(args)
        if args.command == "hwcost":
            return _cmd_hwcost(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
    except KeyboardInterrupt:
        # The executor has already cancelled pending futures and shut its
        # pool down; exit with the conventional code instead of a traceback
        # cascade from every worker.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    parser.error(f"unhandled command {args.command!r}")
    return 2
