"""NumPy-vectorized execution backend.

The scalar reference kernels (:mod:`repro.predictors.tage`,
:mod:`repro.predictors.gshare`, :mod:`repro.predictors.btb`) spend most
of their time on *per-branch bookkeeping that only depends on the PC and
outcome stream*: folding global/path history into table indices, hashing
tags, and locating packed counter words.  Those quantities form closed
trajectories over a known upcoming record stream — nothing in them reads
table *contents* — so they can be batch-computed with NumPy ahead of
time.  What cannot be hoisted is the sequential dependency through the
tables themselves (a branch's update changes the word the next branch
may read) and through the adaptive state (``use_alt``, the useful-reset
counter, LRU clocks); those stay scalar, exactly mirroring the reference
kernel statement order, so results are **bit-identical** by
construction.

Mechanics
---------

The engines announce the upcoming record stream through the advisory
``feed(buf, pos)`` protocol (see :mod:`repro.engine.backends`).  A fed
kernel builds a *window*: it scans the buffer for conditional records,
vectorizes every stream-dependent quantity for up to ``_WINDOW_MAX`` of
them, and then consumes the window one branch at a time with a generated
scalar kernel that replaces the history/hash arithmetic with list
indexing.  Every consume call verifies the ``(pc, taken)`` it was handed
against the window cursor; any deviation (or a call with no window)
falls back to the reference kernel, which reads the live history state
and is therefore always correct.  Windows die with their underlying
reference kernel: flushes, key rotation and stats resets drop the
reference kernel through the existing mask-cache protocol, and the fetch
wrapper rebuilds against fresh masks on the next fetch.

The trace generator's geometric gap sampling (~12% of engine runtime)
is vectorized through the ``gap_block`` hook of
:meth:`repro.workloads.generator.SyntheticWorkload.record_batches`,
replaying the Mersenne-Twister double stream bit-exactly via
``getrandbits``.

Everything here is an execution strategy only: ``ENGINE_VERSION``,
cache keys and store payloads are untouched, and the golden-trace and
differential suites hold this backend bit-identical to ``python``.
"""

from __future__ import annotations

import weakref
from math import log
from typing import Dict, List, Optional

import numpy as np

from ..predictors.btb import BranchTargetBuffer
from ..predictors.gshare import GsharePredictor
from ..predictors.tage import TagePredictor
from ..types import BranchType
from ..workloads.generator import SyntheticWorkload
from .backends import ExecutionBackend

__all__ = ["NumpyBackend"]

_COND = BranchType.CONDITIONAL

#: Maximum conditional branches vectorized per window refill.
_WINDOW_MAX = 4096

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53


# ---------------------------------------------------------------------------
# Bulk RNG replay
# ---------------------------------------------------------------------------

def _bulk_uniforms(rng, count: int) -> np.ndarray:
    """``[rng.random() for _ in range(count)]``, bit-exactly, in bulk.

    CPython's ``random()`` consumes two 32-bit Mersenne-Twister words per
    double: ``((a >> 5) * 2**26 + (b >> 6)) * 2**-53``.  ``getrandbits``
    consumes the *same* word stream (32 bits per word, first word in the
    low bits), so one ``getrandbits(64 * count)`` call draws exactly the
    words the scalar loop would and leaves the generator in the same
    state.  The arithmetic is exact in float64 (``a < 2**27`` and the
    final sum is at most ``2**53 - 1``, both exactly representable).
    """
    raw = rng.getrandbits(64 * count)
    words = np.frombuffer(raw.to_bytes(8 * count, "little"), dtype="<u4")
    a = (words[0::2] >> np.uint32(5)).astype(np.float64)
    b = (words[1::2] >> np.uint32(6)).astype(np.float64)
    return (a * 67108864.0 + b) * _INV_2_53


#: Below this many draws the fixed cost of the bulk path (big-int
#: ``getrandbits``, array round-trips) exceeds the scalar loop.
_GAP_BULK_MIN = 64

#: Half-width of the integer-boundary guard band for vectorized logs.
#: ``np.log`` may differ from ``math.log`` by a few ULPs (absolute error
#: well under 1e-12 at these magnitudes); only draws whose gap value
#: lands within the band around an integer could truncate differently,
#: and those are recomputed with ``math.log``.  The band is ~10**6 times
#: the worst-case divergence, and is hit by ~2 in 10**6 draws.
_GAP_GUARD = 1e-6


def _gap_block(rng, count: int, neg_mean_gap: float) -> List[int]:
    """Bulk geometric gap sampler for ``record_batches``.

    Bit-identical to the scalar path
    ``int(log(1.0 - rng.random()) * neg_mean_gap) + 1`` by construction:
    small bursts run exactly that loop, large bursts vectorize the log
    and re-derive every draw near an integer boundary with ``math.log``.
    """
    if count < _GAP_BULK_MIN:
        random_ = rng.random
        return [int(log(1.0 - random_()) * neg_mean_gap) + 1
                for _ in range(count)]
    us = _bulk_uniforms(rng, count)
    g = np.log(1.0 - us) * neg_mean_gap
    whole = np.floor(g)
    out = (whole.astype(np.int64) + 1).tolist()
    frac = g - whole
    risky = np.nonzero((frac < _GAP_GUARD) | (frac > 1.0 - _GAP_GUARD))[0]
    for k in risky.tolist():
        out[k] = int(log(1.0 - us[k]) * neg_mean_gap) + 1
    return out


# ---------------------------------------------------------------------------
# History trajectory helpers
# ---------------------------------------------------------------------------

def _bit_ext(value: int, cap: int, outcomes: np.ndarray) -> np.ndarray:
    """Outcome-bit timeline: ``cap`` prior bits of ``value``, then outcomes.

    ``ext[cap - 1 - m]`` is bit ``m`` of the prior register (the outcome
    ``m + 1`` branches ago); ``ext[cap + k]`` is window outcome ``k``.
    """
    n = outcomes.shape[0]
    ext = np.empty(cap + n, dtype=np.int64)
    ext[:cap] = [(value >> m) & 1 for m in range(cap - 1, -1, -1)]
    ext[cap:] = outcomes
    return ext


def _fold_trajectory(width: int, lengths: np.ndarray, f0: np.ndarray,
                     outcomes: np.ndarray, ext: np.ndarray,
                     cap: int) -> np.ndarray:
    """All-lane folded-register trajectory under the SWAR push.

    The reference push (:meth:`TagePredictor._push_history`) advances
    each width-``w`` lane as ``f' = rotl1(f) ^ outcome ^ (old << (L % w))``
    where ``old`` is the bit leaving the lane's ``L``-deep history
    window.  Rotation commutes into a closed form::

        f_i = rotl(i % w, f_0 ^ XOR_{j<i} rotr((j+1) % w, b_j)),
        b_j = outcome_j ^ (old_j << (L % w)),  old_j = ext[cap + j - L]

    which vectorizes to one ``bitwise_xor.accumulate`` over the window.
    Returns shape ``(n_branches + 1, n_lanes)``: row 0 is the pre-window
    state, row ``i`` the state entering branch ``i``.
    """
    n = outcomes.shape[0]
    wmask = (1 << width) - 1
    ins = lengths % width
    idx = np.arange(n, dtype=np.int64)[:, None] + (cap - lengths)[None, :]
    b = outcomes[:, None] ^ (ext[idx] << ins[None, :])
    s1 = (np.arange(1, n + 1, dtype=np.int64) % width)[:, None]
    d = ((b >> s1) | (b << (width - s1))) & wmask
    c = np.empty((n + 1, lengths.shape[0]), dtype=np.int64)
    c[0] = f0
    np.bitwise_xor(f0[None, :], np.bitwise_xor.accumulate(d, axis=0),
                   out=c[1:])
    s2 = (np.arange(n + 1, dtype=np.int64) % width)[:, None]
    return ((c << s2) | (c >> (width - s2))) & wmask


def _lane_groups(n_lanes: int, pitch: int, width: int):
    """Partition SWAR lanes into int64-safe groups for bulk writeback.

    Lane ``t`` sits at absolute offset ``t * pitch``; a group ``[a, b)``
    is rebased to lane ``a`` and must keep its top bit below bit 63 so
    the packed trajectory fits a signed int64 array.
    """
    groups = []
    start = 0
    while start < n_lanes:
        end = start + 1
        while end < n_lanes and (end - start) * pitch + width <= 63:
            end += 1
        groups.append((start, end))
        start = end
    return groups


# ---------------------------------------------------------------------------
# Window state machine (shared by all consume kernels)
# ---------------------------------------------------------------------------

class _Window:
    """Vectorized lookahead over one trace buffer's conditional branches.

    Owns the cursor ``ns["W"] = [cursor, limit]`` read by the generated
    consume kernel and the miss handler the kernel bails to.  ``feed``
    is idempotent for in-stream positions, rebuilds otherwise; ``miss``
    refills when the window is merely exhausted and otherwise invalidates
    and delegates to the reference kernel for the rest of the buffer.
    """

    __slots__ = ("ns", "base", "precompute", "kernel", "buf",
                 "scan_from", "cond_pos")

    def __init__(self, ns: dict, base, precompute) -> None:
        self.ns = ns
        self.base = base
        self.precompute = precompute
        self.kernel = None
        self.buf = None
        self.scan_from = 0
        self.cond_pos: List[int] = []
        ns["W"] = [0, 0]
        ns["_miss"] = self.miss

    def feed(self, buf, pos: int) -> None:
        w = self.ns["W"]
        if buf is self.buf and pos <= self.scan_from:
            cur = w[0]
            if cur >= w[1] or pos <= self.cond_pos[cur]:
                return  # already covering this position
        self.buf = buf
        self.scan_from = pos
        w[0] = 0
        w[1] = 0
        self._refill()

    def _refill(self) -> bool:
        buf = self.buf
        cond = _COND
        items: List[int] = []
        pcs: List[int] = []
        tks: List[bool] = []
        add_pos = items.append
        add_pc = pcs.append
        add_tk = tks.append
        for j in range(self.scan_from, len(buf)):
            rec = buf[j]
            if rec[3] is cond:
                add_pos(j)
                add_pc(rec[0])
                add_tk(rec[1])
        if len(items) > _WINDOW_MAX:
            del items[_WINDOW_MAX:]
            del pcs[_WINDOW_MAX:]
            del tks[_WINDOW_MAX:]
            self.scan_from = items[-1] + 1
        else:
            self.scan_from = len(buf)
        if not items:
            return False
        self.cond_pos = items
        ns = self.ns
        ns["PCS"] = pcs
        ns["TKN"] = tks
        self.precompute(pcs, tks, ns)
        w = ns["W"]
        w[0] = 0
        w[1] = len(items)
        return True

    def miss(self, *args):
        ns = self.ns
        w = ns["W"]
        if (w[0] >= w[1] and self.buf is not None
                and self.scan_from < len(self.buf)):
            # Window exhausted mid-buffer: vectorize the next stretch.
            if self._refill():
                return self.kernel(*args)
        # Stream deviation (or no feed): run the rest of the buffer on
        # the reference kernel, which reads the live history state.
        self.buf = None
        w[0] = 0
        w[1] = 0
        return self.base(*args)


def _chunk_fold(values: np.ndarray, total_bits: int, width: int,
                mask: int) -> np.ndarray:
    """Vectorized ``fold_history``: XOR of ``width``-bit chunks."""
    folded = np.zeros_like(values)
    for shift in range(0, total_bits, width):
        folded ^= values >> shift
    return folded & mask


# ---------------------------------------------------------------------------
# TAGE
# ---------------------------------------------------------------------------

class _TagePre:
    """Per-(predictor, thread) window precompute for the TAGE kernel."""

    def __init__(self, p: TagePredictor, thread_id: int, bundle) -> None:
        cfg = p.config
        self.tid = thread_id
        self.n = cfg.n_tables
        self.ibits = p._index_bits
        self.imask = (1 << self.ibits) - 1
        self.tmask = p._tag_mask
        self.lengths = np.asarray(p._history_lengths, dtype=np.int64)
        self.cap = p._ghr._bits
        self.gmask = p._ghr._mask
        self.tshift = np.arange(self.n, dtype=np.int64) & 3
        encoded = bundle[0]
        self.encoded = encoded
        # Per-table fused index keys (passthrough: the bare hash constant
        # ``t * 0x1F``); entry layout is shared by both bundle shapes.
        self.mk = np.asarray([entry[2] for entry in bundle[1]],
                             dtype=np.int64)
        # Path history geometry.
        path = p._path
        self.pbits = path._bits
        self.pmask = path._mask
        self.pcb = path._pc_bits
        self.pcmask = (1 << self.pcb) - 1
        self.pchunks = -(-self.pbits // self.pcb)
        # Base (bimodal) word coordinates.
        self.bimask = p._base_index_mask
        self.cpw = p._base_cpw
        self.cbits = p._base_counter_bits
        self.pow2 = self.cpw & (self.cpw - 1) == 0
        self.brshift = self.cpw.bit_length() - 1
        self.bik = bundle[2] if encoded else 0
        self.bwindex = p._base_words._index_mask
        # The three folded SWAR register files and their writeback groups.
        self.files = []
        for swar in (p._swar_i, p._swar_t0, p._swar_t1):
            width = swar.width
            offsets = swar.lane_offsets
            self.files.append((width, offsets,
                               _lane_groups(self.n, width + 1, width)))

    def __call__(self, pcs_list, tks_list, ns: dict) -> None:
        pcs = np.asarray(pcs_list, dtype=np.int64)
        outc = np.asarray(tks_list, dtype=np.int64)
        nbr = pcs.shape[0]
        tid = self.tid
        regs = ns["regs"]
        ghr0 = ns["ghr_values"].get(tid, 0)
        path0 = ns["path_values"].get(tid, 0)

        # Folded-register trajectories (shape (nbr + 1, n_tables) each).
        ext = _bit_ext(ghr0, self.cap, outc)
        trajs = []
        for k, (width, offsets, _groups) in enumerate(self.files):
            wmask = (1 << width) - 1
            f0 = np.asarray([(regs[k] >> off) & wmask for off in offsets],
                            dtype=np.int64)
            trajs.append(_fold_trajectory(width, self.lengths, f0, outc,
                                          ext, self.cap))

        # Path-history trajectory and its per-branch fold.
        K = self.pchunks
        pcb = self.pcb
        pext = np.empty(K + nbr, dtype=np.int64)
        pext[:K] = [(path0 >> ((K - 1 - j) * pcb)) & self.pcmask
                    for j in range(K)]
        pext[K:] = (pcs >> 2) & self.pcmask
        pv = np.zeros(nbr + 1, dtype=np.int64)
        for m in range(K):
            pv |= pext[K - 1 - m: K - 1 - m + nbr + 1] << (m * pcb)
        pv &= self.pmask
        pf = _chunk_fold(pv[:nbr], self.pbits, self.ibits, self.imask)

        # Per-table rows and tags (lookup *and* allocation reuse these).
        pc2 = pcs >> 2
        pc_bits = pc2 ^ (pcs >> (2 + self.ibits))
        fI, fT0, fT1 = trajs
        rows = (pc_bits[:, None] ^ fI[:nbr]
                ^ (pf[:, None] >> self.tshift[None, :])
                ^ self.mk[None, :]) & self.imask
        tags = (pc2[:, None] ^ fT0[:nbr] ^ (fT1[:nbr] << 1)) & self.tmask
        rows_t = rows.T.tolist()
        tags_t = tags.T.tolist()
        for t in range(self.n):
            ns[f"CR{t}"] = rows_t[t]
            ns[f"CT{t}"] = tags_t[t]

        # Base PHT word coordinates.
        bidx = pc2 & self.bimask
        if self.pow2:
            bshift = (bidx & (self.cpw - 1)) * self.cbits
            brow = bidx >> self.brshift
        else:
            bshift = (bidx % self.cpw) * self.cbits
            brow = bidx // self.cpw
        if self.encoded:
            brow = (brow ^ self.bik) & self.bwindex
        ns["CBR"] = brow.tolist()
        ns["CBS"] = bshift.tolist()

        # Post-push register writebacks, packed per int64-safe lane group.
        for k, (_width, offsets, groups) in enumerate(self.files):
            post = trajs[k][1:]
            for a, b in groups:
                base_off = offsets[a]
                acc = post[:, a].copy()
                for t in range(a + 1, b):
                    acc |= post[:, t] << (offsets[t] - base_off)
                ns[f"RG{k}_{a}"] = acc.tolist()
        ns["PV"] = pv[1:].tolist()


def _tage_consume_source(p: TagePredictor, encoded: bool,
                         diversified: bool) -> str:
    """Generate the window-consuming arm of the TAGE kernel.

    Statement order mirrors :meth:`TagePredictor._kernel_source` exactly;
    the history folds, index/tag hashes and base-word coordinates are
    replaced by precomputed-array reads, and the SWAR history push by the
    precomputed post-push register values.  Everything that threads
    sequential state (table words, ``use_alt``, the useful-reset counter,
    allocation) is byte-for-byte the reference arithmetic.
    """
    cfg = p.config
    n = cfg.n_tables
    ibits = p._index_bits
    imask = (1 << ibits) - 1
    tmask = p._tag_mask
    ubits = cfg.useful_bits
    cmask = p._ctr_mask
    umask = p._u_mask
    ctr_shift = ubits + cfg.counter_bits
    weak = p._ctr_weak_taken
    thresh = 1 << (cfg.counter_bits - 1)
    entries = cfg.table_entries
    boff = p._base_words._offset
    bcmask = (1 << p._base_counter_bits) - 1
    gmask = p._ghr._mask

    lines = []
    emit = lines.append
    emit("def _kernel(pc, taken, thread_id=0):")
    emit("    i = W[0]")
    emit("    if i >= W[1] or PCS[i] != pc or TKN[i] != taken:")
    emit("        return _miss(pc, taken)")
    emit("    W[0] = i + 1")
    emit("    provider = -1")
    emit("    alt = -1")
    emit("    provider_ctr = 0")
    for t in range(n):
        toff = t * entries
        emit(f"    row = CR{t}[i]")
        cell = f"flat[{toff} + row]" if toff else "flat[row]"
        if encoded:
            decode = f" ^ CK{t}" + (f" ^ RK{t}[row]" if diversified else "")
            emit(f"    word = {cell}{decode}")
        else:
            emit(f"    word = {cell}")
        emit("    if word:")
        emit(f"        tag = CT{t}[i]")
        emit(f"        if ((word >> {ctr_shift}) & {tmask}) == tag:")
        emit("            alt = provider")
        emit("            alt_ctr = provider_ctr")
        emit(f"            provider = {t}")
        emit("            provider_row = row")
        emit("            provider_tag = tag")
        emit(f"            provider_ctr = (word >> {ubits}) & {cmask}")
        emit(f"            provider_useful = word & {umask}")
        emit(f"            provider_base = {toff}")
        if encoded:
            emit(f"            provider_ck = CK{t}")
            if diversified:
                emit(f"            provider_rk = RK{t}")
            emit(f"            provider_ik = IK{t}")
    emit("    base_row = CBR[i]")
    emit("    base_shift = CBS[i]")
    base_cell = (f"base_data[{boff} + base_row]" if boff
                 else "base_data[base_row]")
    base_decode = ""
    if encoded:
        base_decode = " ^ BCK" + (" ^ BRK[base_row]" if diversified else "")
    emit(f"    base_word = {base_cell}{base_decode}")
    emit(f"    base_counter = (base_word >> base_shift) & {bcmask}")
    emit(f"    base_taken = base_counter >= {p._base_threshold}")
    emit(f"    alt_taken = (alt_ctr >= {thresh}) if alt >= 0 else base_taken")
    emit("    if provider >= 0:")
    emit(f"        provider_taken = provider_ctr >= {thresh}")
    emit("        use_alt = (provider_useful == 0")
    emit(f"                   and {weak - 1} <= provider_ctr <= {weak}")
    emit(f"                   and predictor._use_alt >= "
         f"{1 << (cfg.use_alt_bits - 1)})")
    emit("        predicted = alt_taken if use_alt else provider_taken")
    emit("    else:")
    emit("        use_alt = False")
    emit("        predicted = base_taken")
    emit("    pstats.lookups += 1")
    emit("    mispredicted = predicted != taken")
    emit("    if mispredicted:")
    emit("        pstats.mispredictions += 1")
    emit("    count = predictor._update_count + 1")
    emit("    predictor._update_count = count")
    emit(f"    reset_fired = count % {cfg.useful_reset_period} == 0")
    emit("    if reset_fired:")
    emit("        predictor._graceful_useful_reset(TID)")
    emit("    if provider >= 0:")
    emit("        ctr = provider_ctr")
    emit("        useful = provider_useful")
    emit("        if reset_fired:")
    if encoded:
        emit("            word = predictor._tables[provider].read("
             f"(provider_row ^ provider_ik) & {imask}, TID)")
    else:
        emit("            word = predictor._tables[provider].read("
             "provider_row, TID)")
    emit(f"            ctr = (word >> {ubits}) & {cmask}")
    emit(f"            useful = word & {umask}")
    emit(f"        provider_taken = ctr >= {thresh}")
    emit(f"        if use_alt or (useful == 0 and {weak - 1} <= ctr <= {weak}):")
    emit("            if provider_taken != alt_taken:")
    emit("                if alt_taken == taken:")
    emit("                    ua = predictor._use_alt + 1")
    emit(f"                    if ua <= {p._use_alt_max}:")
    emit("                        predictor._use_alt = ua")
    emit("                else:")
    emit("                    ua = predictor._use_alt - 1")
    emit("                    if ua >= 0:")
    emit("                        predictor._use_alt = ua")
    emit("        if taken:")
    emit(f"            new_ctr = ctr + 1 if ctr < {cmask} else {cmask}")
    emit("        else:")
    emit("            new_ctr = ctr - 1 if ctr > 0 else 0")
    emit("        new_useful = useful")
    emit("        if provider_taken != alt_taken:")
    emit("            if provider_taken == taken:")
    emit(f"                new_useful = useful + 1 if useful < {umask}"
         f" else {umask}")
    emit("            else:")
    emit("                new_useful = useful - 1 if useful > 0 else 0")
    packed = (f"(provider_tag << {ctr_shift}) | (new_ctr << {ubits})"
              " | new_useful")
    if encoded:
        encode = " ^ provider_ck" + (" ^ provider_rk[provider_row]"
                                     if diversified else "")
        emit(f"        flat[provider_base + provider_row] = ({packed}){encode}")
    else:
        emit(f"        flat[provider_base + provider_row] = {packed}")
    emit("    if provider < 0 or alt < 0:")
    emit("        if taken:")
    emit(f"            new_base = base_counter + 1 if base_counter < {bcmask}"
         f" else {bcmask}")
    emit("        else:")
    emit("            new_base = base_counter - 1 if base_counter > 0 else 0")
    new_word = (f"((base_word & ~({bcmask} << base_shift))"
                f" | (new_base << base_shift))"
                f" & {p._base_words._value_mask}")
    if encoded:
        emit(f"        {base_cell} = ({new_word}){base_decode}")
    else:
        emit(f"        {base_cell} = {new_word}")
    emit(f"    if mispredicted and provider < {n - 1}:")
    if encoded:
        idx_items = ", ".join(f"CR{t}[i] ^ IK{t}" for t in range(n))
    else:
        idx_items = ", ".join(f"CR{t}[i]" for t in range(n))
    tag_items = ", ".join(f"CT{t}[i]" for t in range(n))
    emit("        predictor._allocate(pc, taken, provider,")
    emit(f"                            [{idx_items}],")
    emit(f"                            [{tag_items}], TID)")
    # History push: registers and path come from the precomputed
    # trajectories; the (arbitrary-width) GHR shifts scalar.
    for k, (_width, offsets, groups) in enumerate(
            (s.width, s.lane_offsets,
             _lane_groups(p.config.n_tables, s.width + 1, s.width))
            for s in (p._swar_i, p._swar_t0, p._swar_t1)):
        terms = []
        for a, _b in groups:
            name = f"RG{k}_{a}[i]"
            terms.append(name if offsets[a] == 0
                         else f"({name} << {offsets[a]})")
        emit(f"    regs[{k}] = " + " | ".join(terms))
    emit("    ghr_value = ghr_values.get(TID, 0)")
    emit("    if taken:")
    emit(f"        ghr_values[TID] = ((ghr_value << 1) | 1) & {gmask}")
    emit("    else:")
    emit(f"        ghr_values[TID] = (ghr_value << 1) & {gmask}")
    emit("    path_values[TID] = PV[i]")
    emit("    return predicted")
    return "\n".join(lines) + "\n"


class _TageFetch:
    """Backend fetch wrapper for one :class:`TagePredictor`.

    Caches one window kernel per thread, keyed to the identity of the
    reference kernel it shadows — every event that invalidates the
    reference kernel (flush, rekey, stats reset, forced generic
    dispatch) therefore invalidates the window kernel too.
    """

    def __init__(self, predictor: TagePredictor) -> None:
        self._p = predictor
        self._kernels: Dict[int, tuple] = {}
        self._code: Dict[tuple, object] = {}

    def __call__(self, thread_id: int = 0):
        base = self._p.exec_kernel(thread_id)
        cached = self._kernels.get(thread_id)
        if cached is not None and cached[0] is base:
            return cached[1]
        fn = self._build(thread_id, base)
        self._kernels[thread_id] = (base, fn)
        return fn

    def _build(self, thread_id: int, base):
        if getattr(base, "arm", "generic") == "generic":
            return base
        p = self._p
        bundle = p._kernel_masks.get(thread_id)
        if bundle is None:
            bundle = p._build_kernel_masks(thread_id)
        if bundle is False:
            return base
        encoded = bundle[0]
        diversified = encoded and bool(
            getattr(p._tables[0].isolation, "_row_diversified", False))
        key = (encoded, diversified)
        code = self._code.get(key)
        if code is None:
            source = _tage_consume_source(p, encoded, diversified)
            code = compile(source, f"<tage-numpy-kernel {key}>", "exec")
            self._code[key] = code
        ns = p._kernel_namespace(thread_id, bundle)
        window = _Window(ns, base, _TagePre(p, thread_id, bundle))
        exec(code, ns)
        fn = ns["_kernel"]
        window.kernel = fn
        fn.feed = window.feed
        fn.arm = base.arm
        fn.backend = "numpy"
        return fn


# ---------------------------------------------------------------------------
# Gshare
# ---------------------------------------------------------------------------

class _GsharePre:
    """Per-(predictor, thread) window precompute for the gshare kernel."""

    def __init__(self, p: GsharePredictor, thread_id: int,
                 encoded: bool) -> None:
        words = p._pht.word_table
        cpw = p._pht.counters_per_word
        self.tid = thread_id
        self.hbits = p._history_bits
        self.gmask = p._ghr._mask
        self.index_bits = p._index_bits
        self.index_mask = p._index_mask
        self.word_shift = cpw.bit_length() - 1
        self.slot_mask = cpw - 1
        self.offset = words._offset
        self.encoded = encoded
        if encoded:
            masks = words._xor_masks.get(thread_id)
            if masks is None:
                masks = words._build_xor_masks(thread_id)
            self.index_key, self.content_key, row_keys = masks
            self.windex_mask = words._index_mask
            self.row_keys = np.asarray(row_keys, dtype=np.int64)

    def __call__(self, pcs_list, tks_list, ns: dict) -> None:
        pcs = np.asarray(pcs_list, dtype=np.int64)
        outc = np.asarray(tks_list, dtype=np.int64)
        nbr = pcs.shape[0]
        ghr0 = ns["ghr_values"].get(self.tid, 0)
        hbits = self.hbits
        ext = _bit_ext(ghr0, hbits, outc)
        hv = np.zeros(nbr + 1, dtype=np.int64)
        for m in range(hbits):
            hv |= ext[hbits - 1 - m: hbits - 1 - m + nbr + 1] << m
        folded = _chunk_fold(hv[:nbr], hbits, self.index_bits,
                             self.index_mask)
        index = ((pcs >> 2) ^ folded) & self.index_mask
        shift = (index & self.slot_mask) * 2
        if self.encoded:
            row = ((index >> self.word_shift) ^ self.index_key) \
                & self.windex_mask
            ns["DK"] = (self.content_key ^ self.row_keys[row]).tolist()
            row = row + self.offset
        else:
            row = (index >> self.word_shift) + self.offset
        ns["GR"] = row.tolist()
        ns["GS"] = shift.tolist()
        ns["GH"] = hv[1:].tolist()


def _gshare_consume_source(encoded: bool, vmask: int) -> str:
    """Generate the window-consuming arm of the gshare kernel."""
    lines = []
    emit = lines.append
    emit("def _kernel(pc, taken, _thread_id=0):")
    emit("    i = W[0]")
    emit("    if i >= W[1] or PCS[i] != pc or TKN[i] != taken:")
    emit("        return _miss(pc, taken)")
    emit("    W[0] = i + 1")
    emit("    row = GR[i]")
    emit("    shift = GS[i]")
    if encoded:
        emit("    decode_key = DK[i]")
        emit("    word = data[row] ^ decode_key")
    else:
        emit("    word = data[row]")
    emit("    counter = (word >> shift) & 3")
    emit("    predicted = counter >= 2")
    emit("    pstats.lookups += 1")
    emit("    if predicted != taken:")
    emit("        pstats.mispredictions += 1")
    emit("    if taken:")
    emit("        new_counter = counter + 1 if counter < 3 else 3")
    emit("    else:")
    emit("        new_counter = counter - 1 if counter > 0 else 0")
    emit("    ghr_values[TID] = GH[i]")
    word = f"((word & ~(3 << shift)) | (new_counter << shift)) & {vmask}"
    if encoded:
        emit(f"    data[row] = ({word}) ^ decode_key")
    else:
        emit(f"    data[row] = {word}")
    emit("    return predicted")
    return "\n".join(lines) + "\n"


class _GshareFetch:
    """Backend fetch wrapper for one :class:`GsharePredictor`."""

    def __init__(self, predictor: GsharePredictor) -> None:
        self._p = predictor
        self._kernels: Dict[int, tuple] = {}
        self._code: Dict[bool, object] = {}

    def __call__(self, thread_id: int = 0):
        base = self._p.exec_kernel(thread_id)
        cached = self._kernels.get(thread_id)
        if cached is not None and cached[0] is base:
            return cached[1]
        fn = self._build(thread_id, base)
        self._kernels[thread_id] = (base, fn)
        return fn

    def _build(self, thread_id: int, base):
        arm = getattr(base, "arm", "generic")
        p = self._p
        # History registers wider than an int64 lane stay scalar.
        if arm == "generic" or p._history_bits > 63:
            return base
        encoded = arm == "fused-xor"
        code = self._code.get(encoded)
        if code is None:
            source = _gshare_consume_source(
                encoded, p._pht.word_table._value_mask)
            code = compile(source, f"<gshare-numpy-kernel {encoded}>", "exec")
            self._code[encoded] = code
        ns = {
            "data": p._pht.word_table._data,
            "ghr_values": p._ghr._values,
            "pstats": p.stats(thread_id),
            "TID": thread_id,
        }
        window = _Window(ns, base, _GsharePre(p, thread_id, encoded))
        exec(code, ns)
        fn = ns["_kernel"]
        window.kernel = fn
        fn.feed = window.feed
        fn.arm = arm
        fn.backend = "numpy"
        return fn


# ---------------------------------------------------------------------------
# BTB conditional probe
# ---------------------------------------------------------------------------

class _BtbPre:
    """Per-(btb, thread) window precompute for the conditional probe.

    Only PC-derived coordinates are hoisted (set index, encoded tag,
    diversified decode keys); entry contents, LRU clocks and the install
    path read live state, so interleaved indirect/call traffic — which
    mutates entry contents but never the set geometry — cannot stale a
    window.
    """

    def __init__(self, btb: BranchTargetBuffer, thread_id: int,
                 encoded: bool, diversified: bool) -> None:
        self.index_mask = btb._index_mask
        self.tag_shift = btb._tag_shift
        self.tag_mask = btb._tag_mask
        self.ways = btb._n_ways
        self.encoded = encoded
        self.diversified = diversified
        if encoded:
            masks = btb._xor_masks.get(thread_id)
            if masks is None:
                masks = btb._build_xor_masks(thread_id)
            self.index_key, self.tag_key, self.target_key = masks
            if diversified:
                self.tag_row_keys = np.asarray(btb._tag_row_keys,
                                               dtype=np.int64)
                self.target_row_keys = np.asarray(btb._target_row_keys,
                                                  dtype=np.int64)

    def __call__(self, pcs_list, tks_list, ns: dict) -> None:
        pcs = np.asarray(pcs_list, dtype=np.int64)
        pc2 = pcs >> 2
        ptag = (pcs >> self.tag_shift) & self.tag_mask
        if self.encoded:
            set_index = (pc2 ^ self.index_key) & self.index_mask
            if self.diversified:
                dec_tag = self.tag_key ^ self.tag_row_keys[set_index]
                ns["ET"] = (ptag ^ dec_tag).tolist()
                ns["DTG"] = (self.target_key
                             ^ self.target_row_keys[set_index]).tolist()
            else:
                ns["ET"] = (ptag ^ self.tag_key).tolist()
        else:
            set_index = pc2 & self.index_mask
            ns["ET"] = ptag.tolist()
        ns["I0"] = (set_index * self.ways).tolist()


def _btb_consume_source(btb: BranchTargetBuffer, encoded: bool,
                        diversified: bool) -> str:
    """Generate the window-consuming arm of the BTB conditional probe.

    Statement order mirrors :meth:`BranchTargetBuffer._cond_kernel_source`
    exactly, with the PC-derived coordinates read from the window arrays.
    """
    from ..predictors.btb import _CONDITIONAL_INT

    ways = btb._n_ways
    target_mask = btb._target_mask
    idx = [f"i{w}" for w in range(ways)]
    lines = []
    emit = lines.append
    emit("def _kernel(pc, target, taken, _thread_id=0):")
    emit("    i = W[0]")
    emit("    if i >= W[1] or PCS[i] != pc:")
    emit("        return _miss(pc, target, taken)")
    emit("    W[0] = i + 1")
    emit("    btb.lookups += 1")
    emit("    clock = btb._clock + 1")
    emit("    enc_tag = ET[i]")
    if encoded and diversified:
        emit("    dec_target = DTG[i]")
        read = "(targets[{i}] ^ dec_target) & " + str(target_mask)
        write = f"(target & {target_mask}) ^ dec_target"
    elif encoded:
        read = "(targets[{i}] ^ GK) & " + str(target_mask)
        write = f"(target & {target_mask}) ^ GK"
    else:
        read = "targets[{i}] & " + str(target_mask)
        write = f"target & {target_mask}"
    emit("    i0 = I0[i]")
    for w in range(1, ways):
        emit(f"    i{w} = i0 + {w}")
    emit("    hit = False")
    emit("    btb_target = None")
    emit("    victim = -1")
    for w, iw in enumerate(idx):
        emit(f"    {'if' if w == 0 else 'elif'} valid[{iw}]"
             f" and tags[{iw}] == enc_tag:")
        emit(f"        last[{iw}] = clock")
        emit("        btb.hits += 1")
        emit("        hit = True")
        emit(f"        btb_target = {read.format(i=iw)}")
        emit(f"        victim = {iw}")
    emit("    if taken:")
    emit("        clock += 1")
    emit("        if victim < 0:")
    for w, iw in enumerate(idx):
        emit(f"            {'if' if w == 0 else 'elif'} not valid[{iw}]:")
        emit(f"                victim = {iw}")
    if ways > 1:
        emit("            else:")
        emit(f"                victim = {idx[0]}")
        emit(f"                low = last[{idx[0]}]")
        for iw in idx[1:]:
            emit(f"                if last[{iw}] < low:")
            emit(f"                    low = last[{iw}]")
            emit(f"                    victim = {iw}")
    else:
        emit("            else:")
        emit(f"                victim = {idx[0]}")
    emit("        valid[victim] = True")
    emit("        tags[victim] = enc_tag")
    emit(f"        targets[victim] = {write}")
    emit(f"        types[victim] = {_CONDITIONAL_INT}")
    emit("        owners[victim] = OWNER")
    emit("        last[victim] = clock")
    emit("    btb._clock = clock")
    emit("    return hit, btb_target")
    return "\n".join(lines) + "\n"


class _BtbFetch:
    """Backend fetch wrapper for one :class:`BranchTargetBuffer`."""

    def __init__(self, btb: BranchTargetBuffer) -> None:
        self._b = btb
        self._kernels: Dict[int, tuple] = {}
        self._code: Dict[tuple, object] = {}

    def __call__(self, thread_id: int = 0):
        base = self._b.exec_conditional_kernel(thread_id)
        cached = self._kernels.get(thread_id)
        if cached is not None and cached[0] is base:
            return cached[1]
        fn = self._build(thread_id, base)
        self._kernels[thread_id] = (base, fn)
        return fn

    def _build(self, thread_id: int, base):
        arm = getattr(base, "arm", "generic")
        if arm == "generic":
            return base
        b = self._b
        encoded = arm == "fused-xor"
        diversified = encoded and bool(
            getattr(b._isolation, "_row_diversified", False))
        key = (encoded, diversified)
        code = self._code.get(key)
        if code is None:
            source = _btb_consume_source(b, encoded, diversified)
            code = compile(source, f"<btb-numpy-kernel {key}>", "exec")
            self._code[key] = code
        ns = {
            "valid": b._valid, "tags": b._tags, "targets": b._targets,
            "types": b._types, "owners": b._owners, "last": b._last,
            "btb": b, "OWNER": thread_id,
        }
        if encoded and not diversified:
            masks = b._xor_masks.get(thread_id)
            if masks is None:
                masks = b._build_xor_masks(thread_id)
            ns["GK"] = masks[2]
        window = _Window(ns, base, _BtbPre(b, thread_id, encoded,
                                           diversified))
        exec(code, ns)
        fn = ns["_kernel"]
        window.kernel = fn
        fn.feed = window.feed
        fn.arm = arm
        fn.backend = "numpy"
        return fn


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class NumpyBackend(ExecutionBackend):
    """NumPy-vectorized execution backend (bit-identical to ``python``).

    Accelerates exactly three hot paths — the TAGE table walk, the
    gshare fast paths and the BTB conditional probe — for the *exact*
    predictor classes it knows; subclasses and every other predictor
    fall through to the reference kernels untouched.  The trace
    generator's geometric gaps are drawn in bulk through the
    ``gap_block`` hook.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._direction = weakref.WeakKeyDictionary()
        self._conditional = weakref.WeakKeyDictionary()

    def direction_kernel_fetch(self, direction):
        if type(direction) is TagePredictor:
            fetch = self._direction.get(direction)
            if fetch is None:
                fetch = self._direction[direction] = _TageFetch(direction)
            return fetch
        if type(direction) is GsharePredictor:
            fetch = self._direction.get(direction)
            if fetch is None:
                fetch = self._direction[direction] = _GshareFetch(direction)
            return fetch
        return super().direction_kernel_fetch(direction)

    def conditional_kernel_fetch(self, btb):
        if type(btb) is BranchTargetBuffer:
            fetch = self._conditional.get(btb)
            if fetch is None:
                fetch = self._conditional[btb] = _BtbFetch(btb)
            return fetch
        return super().conditional_kernel_fetch(btb)

    def batch_stream(self, workload, n: int, seed_offset: int = 0):
        if (type(workload) is SyntheticWorkload
                or getattr(type(workload), "record_batches", None)
                is SyntheticWorkload.record_batches):
            return workload.record_batches(n, seed_offset=seed_offset,
                                           gap_block=_gap_block)
        return super().batch_stream(workload, n, seed_offset=seed_offset)
