"""Execution-backend registry for the batched simulation engines.

See :mod:`repro.engine.backends` for the backend contract.  The
``python`` backend is the bit-exact reference; the optional ``numpy``
backend vectorizes the TAGE/gshare/BTB fast paths and the trace
generator while staying bit-identical to it.
"""

from .backends import (
    BACKEND_VAR,
    DEFAULT_BACKEND,
    ExecutionBackend,
    PythonBackend,
    active_backend,
    available_backends,
    env_backend,
    get_backend,
    parse_backend,
    register_backend,
)

__all__ = [
    "BACKEND_VAR",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "PythonBackend",
    "active_backend",
    "available_backends",
    "env_backend",
    "get_backend",
    "parse_backend",
    "register_backend",
]
