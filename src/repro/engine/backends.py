"""Execution-backend registry.

The batched engines (:class:`repro.cpu.core.SingleThreadCore`,
:class:`repro.cpu.smt.SmtCore`) do not talk to predictors directly when
they enter the hot loop — they resolve per-thread *kernels* through the
``exec_kernel`` / ``exec_conditional_kernel`` fetch protocol and replay
trace batches from ``record_batches``.  An *execution backend* is the
object that performs that resolution, which is the single seam where an
alternative implementation (today: NumPy-vectorized) can be swapped in
without the cores knowing anything about it.

Contract
--------

Every backend must preserve **bit-identity** with the ``python``
reference backend: the same trace records, the same predictor state
after every branch, the same :class:`~repro.cpu.stats.ThreadStats`, and
therefore the same figures, cache keys, and store payloads.  Backends
are a pure execution strategy — ``ENGINE_VERSION`` and
``CaseSpec.cache_key()`` deliberately do not mention them.

A backend supplies three hooks:

``direction_kernel_fetch(direction)``
    returns a ``fetch(thread_id) -> kernel`` callable (or ``None`` when
    the predictor has no kernel protocol).  The returned kernel has the
    reference signature ``kernel(pc, taken, thread_id=0) -> bool``.

``conditional_kernel_fetch(btb)``
    same, for the BTB conditional kernel
    (``kernel(pc, target, taken, thread_id=0) -> (hit, target)``).

``batch_stream(workload, n, seed_offset=0)``
    returns the endless iterator of trace batches for one workload.

Kernels returned by a backend may additionally expose an optional
``feed(buf, pos)`` method.  The engines call it whenever the upcoming
record stream changes — after loading a new trace buffer and after
re-fetching kernels across a switch — giving vectorized kernels the
lookahead they need to precompute.  ``feed`` is purely advisory: a
kernel must produce bit-identical results (falling back to scalar
evaluation) when called without it.

Selection
---------

``REPRO_BACKEND`` (or ``--backend`` on the CLI) names the backend;
:func:`parse_backend` validates the name with the same strict
named-source convention as ``REPRO_SCALE``/``REPRO_JOBS``.  ``python``
is the default and the bit-exact reference; ``numpy`` is optional —
requesting it without numpy installed is a hard error, while an unset
``REPRO_BACKEND`` always falls back to ``python``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "BACKEND_VAR",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "PythonBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "parse_backend",
    "env_backend",
    "active_backend",
]

#: Environment variable naming the active execution backend.
BACKEND_VAR = "REPRO_BACKEND"

#: The reference backend used when nothing is requested.
DEFAULT_BACKEND = "python"


class ExecutionBackend:
    """Base execution backend: the reference kernel-resolution strategy.

    Subclasses override the hooks to substitute accelerated kernels;
    the base implementations define the bit-exact reference behaviour.
    """

    #: Registry name of the backend (also reported by ``kernel.backend``).
    name = "abstract"

    def direction_kernel_fetch(self, direction) -> Optional[Callable]:
        """Kernel fetcher for a direction predictor (``None`` if absent)."""
        return getattr(direction, "exec_kernel", None)

    def conditional_kernel_fetch(self, btb) -> Optional[Callable]:
        """Kernel fetcher for a BTB (``None`` if absent)."""
        return getattr(btb, "exec_conditional_kernel", None)

    def batch_stream(self, workload, n: int, seed_offset: int = 0) -> Iterator[list]:
        """Endless iterator of trace batches for one workload."""
        from ..cpu.core import record_batch_stream

        return record_batch_stream(workload, n, seed_offset=seed_offset)


class PythonBackend(ExecutionBackend):
    """The pure-Python reference backend (generated scalar kernels)."""

    name = "python"


_FACTORIES: Dict[str, Callable[[], ExecutionBackend]] = {}
_INSTANCES: Dict[str, ExecutionBackend] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend],
                     *, replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    Raises:
        ValueError: when ``name`` is already registered and ``replace``
            is false.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    if key in _FACTORIES and not replace:
        raise ValueError(f"backend {key!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_FACTORIES)


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate (once) and return the backend registered as ``name``.

    Raises:
        ValueError: unknown name, or the backend's dependencies are not
            importable (e.g. ``numpy`` without numpy installed).
    """
    key = name.strip().lower()
    instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    if key not in _FACTORIES:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown backend {name!r} (available: {known})")
    instance = _FACTORIES[key]()
    _INSTANCES[key] = instance
    return instance


def parse_backend(raw: str, *, source: str = BACKEND_VAR) -> str:
    """Validate a backend name, naming ``source`` in every error.

    Mirrors the strict parsing convention of ``REPRO_SCALE`` /
    ``REPRO_JOBS``: unknown names and an unusable ``numpy`` request are
    both hard errors attributed to the flag or variable that supplied
    the value.

    Returns:
        the canonical (lower-case) backend name.

    Raises:
        ValueError: unknown backend name, or a backend whose
            dependencies cannot be imported.
    """
    key = raw.strip().lower()
    if key not in _FACTORIES:
        known = ", ".join(available_backends())
        raise ValueError(
            f"{source} must name a registered backend ({known}); got {raw!r}")
    try:
        get_backend(key)
    except ValueError:
        raise
    except ImportError as exc:
        raise ValueError(f"{source}={key} is not usable: {exc}") from exc
    return key


def env_backend(environ=None) -> str:
    """Backend name selected by ``REPRO_BACKEND`` (default ``python``).

    Raises:
        ValueError: the variable is set to an unknown or unusable name.
    """
    env = os.environ if environ is None else environ
    raw = env.get(BACKEND_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BACKEND
    return parse_backend(raw, source=BACKEND_VAR)


def active_backend() -> ExecutionBackend:
    """The backend instance selected by the environment."""
    return get_backend(env_backend())


def _numpy_factory() -> ExecutionBackend:
    try:
        from .numpy_backend import NumpyBackend
    except ImportError as exc:
        raise ImportError(
            "the numpy execution backend requires numpy, which is not "
            f"importable ({exc}); install numpy or use REPRO_BACKEND=python"
        ) from exc
    return NumpyBackend()


register_backend("python", PythonBackend)
register_backend("numpy", _numpy_factory)
