#!/usr/bin/env python3
"""SMT study: what does isolation cost on a simultaneous-multithreading core?

This example reproduces a slice of the paper's Figure 10 interactively: it
runs a few Table 3 SMT-2 pairs on the Sunny-Cove-like simulated core, under
three isolation mechanisms (Complete Flush, Precise Flush, Noisy-XOR-BP) and
two direction predictors, and prints the per-pair and average overheads.

It also demonstrates the SMT-4 extension experiment the paper only sketches
(Figure 2 evaluates SMT-4 for Complete Flush alone).

Run:  python examples/smt_predictor_study.py
"""

from repro.analysis import percent, render_table
from repro.cpu import sunny_cove_smt
from repro.experiments import quick_scale, run_smt_case
from repro.experiments.sensitivity import smt4_noisy_xor
from repro.workloads import get_pair

#: SMT-2 cases to include (a subset keeps the example fast; use all twelve
#: cases via the full Figure 10 benchmark: pytest benchmarks/bench_fig10_smt_predictors.py).
CASES = ("case1", "case5", "case8", "case11")
PREDICTORS = ("gshare", "tage_sc_l")
MECHANISMS = ("complete_flush", "precise_flush", "noisy_xor_bp")


def smt2_study() -> None:
    """Per-pair overhead of each mechanism on the SMT-2 core."""
    scale = quick_scale()
    for predictor in PREDICTORS:
        config = sunny_cove_smt(predictor, smt_threads=2)
        rows = []
        sums = {mechanism: 0.0 for mechanism in MECHANISMS}
        for case in CASES:
            pair = get_pair(case, "smt2")
            baseline = run_smt_case(pair, config, "baseline", scale)
            row = [case, f"{baseline.mpki:.2f}"]
            for mechanism in MECHANISMS:
                result = run_smt_case(pair, config, mechanism, scale)
                overhead = result.overhead_vs(baseline)
                sums[mechanism] += overhead
                row.append(percent(overhead))
            rows.append(row)
        rows.append(["average", ""] + [percent(sums[m] / len(CASES)) for m in MECHANISMS])
        print(render_table(
            ["case", "baseline MPKI"] + list(MECHANISMS), rows,
            title=f"SMT-2 isolation overhead with the {predictor} predictor"))
        print()


def smt4_study() -> None:
    """The SMT-4 extension: Noisy-XOR-BP vs the flush mechanisms."""
    result = smt4_noisy_xor(quick_scale(), max_quads=2)
    print(result.render())


def main() -> None:
    print("== Figure 10 slice: SMT-2 isolation overhead ==")
    smt2_study()
    print("== Extension: SMT-4 comparison ==")
    smt4_study()


if __name__ == "__main__":
    main()
