#!/usr/bin/env python3
"""Quantifying the side channel: mutual information through the predictor.

Table 1 of the paper classifies each mechanism qualitatively (Defend /
Mitigate / No Protection).  This example puts numbers behind the verdicts by
measuring the mutual information between a one-bit victim secret and what the
attacker observes through the two predictor channels:

* the PHT *direction* channel (BranchScope-style reuse attack), and
* the BTB *occupancy* channel (SBPA-style contention attack),

in both the single-threaded (time-shared) and SMT (concurrent) scenarios.
It also converts the per-trial leakage into an estimated bandwidth, showing
the Scenario 5 effect: Noisy-XOR makes each probe round more expensive, so
even residual leakage drains slowly.

Run:  python examples/leakage_study.py
"""

from repro.analysis import render_table
from repro.attacks import run_covert_channel
from repro.security import (
    leakage_bandwidth,
    measure_btb_occupancy_leakage,
    measure_direction_leakage,
)

MECHANISMS = ("baseline", "complete_flush", "precise_flush",
              "xor_bp", "noisy_xor_bp")
TRIALS = 400


def channel_table(smt: bool) -> None:
    """Leakage of both channels for every mechanism in one scenario."""
    rows = []
    for mechanism in MECHANISMS:
        direction = measure_direction_leakage(mechanism, trials=TRIALS, smt=smt)
        occupancy = measure_btb_occupancy_leakage(mechanism, trials=TRIALS, smt=smt)
        rows.append([
            mechanism,
            f"{direction.mutual_information_bits:.3f}",
            f"{100 * direction.guess_accuracy:.1f}%",
            f"{occupancy.mutual_information_bits:.3f}",
            f"{100 * occupancy.guess_accuracy:.1f}%",
            f"{leakage_bandwidth(direction):,.0f}",
        ])
    scenario = "SMT (concurrent attacker)" if smt else "single-threaded (time-shared)"
    print(render_table(
        ["mechanism", "PHT MI (bits)", "PHT guess", "BTB MI (bits)", "BTB guess",
         "PHT bandwidth (bits/s)"],
        rows, title=f"Leakage per trial, {scenario} scenario, {TRIALS} trials"))
    print()


def covert_channel_table() -> None:
    """A cooperating sender/receiver pair: raw covert-channel capacity."""
    rows = []
    for mechanism in MECHANISMS:
        result = run_covert_channel(mechanism, payload_bits=256)
        rows.append([mechanism,
                     f"{100 * result.bit_error_rate:.1f}%",
                     f"{result.capacity_bits_per_symbol:.3f}",
                     f"{result.bandwidth_bits_per_second:,.0f}"])
    print(render_table(
        ["mechanism", "bit error rate", "capacity (bits/symbol)",
         "bandwidth (bits/s)"], rows,
        title="PHT covert channel between cooperating processes"))
    print()


def main() -> None:
    print("== How much does each mechanism actually leak? ==\n")
    channel_table(smt=False)
    channel_table(smt=True)
    covert_channel_table()
    print("Reading guide: ~1.0 bits = the attacker recovers the secret every "
          "trial; ~0.0 bits = the observation is independent of the secret.\n"
          "Compare with Table 1: cells marked 'Defend' should be near zero, "
          "'Mitigate' small but possibly non-zero, 'No Protection' near one.")


if __name__ == "__main__":
    main()
