#!/usr/bin/env python3
"""Quickstart: build a secure branch predictor and see what the isolation costs.

This example walks the core public API end to end:

1. build a branch prediction unit (direction predictor + BTB + RAS) protected
   by the paper's Noisy-XOR-BP mechanism;
2. run a synthetic SPEC-like workload through it and look at prediction
   accuracy;
3. time-share the core between two benchmarks under an OS scheduler and
   compare execution time against the unprotected baseline;
4. fire one proof-of-concept attack at both configurations.

Run:  python examples/quickstart.py
"""

from repro.analysis import percent, render_table
from repro.attacks import run_attack
from repro.core import make_bpu
from repro.cpu import SingleThreadCore, fpga_prototype
from repro.types import BranchType
from repro.workloads import get_pair, make_pair_workloads, make_workload


def accuracy_demo() -> None:
    """A protected predictor still learns: accuracy on one benchmark."""
    print("== 1. Prediction accuracy with and without protection ==")
    rows = []
    for preset in ("baseline", "noisy_xor_bp"):
        bpu = make_bpu("tage", preset, btb_sets=256, btb_ways=2)
        workload = make_workload("hmmer", seed=1)
        conditional = mispredicted = 0
        for record in workload.segment(8000):
            outcome = bpu.execute_branch(record.pc, record.taken, record.target,
                                         record.branch_type)
            if record.branch_type is BranchType.CONDITIONAL:
                conditional += 1
                mispredicted += outcome.direction_mispredicted
        rows.append([preset, f"{1 - mispredicted / conditional:.3f}",
                     f"{bpu.btb.hit_rate:.3f}"])
    print(render_table(["configuration", "direction accuracy", "BTB hit rate"], rows))
    print()


def overhead_demo() -> None:
    """Execution-time cost of the isolation under OS context/privilege switches."""
    print("== 2. Execution-time overhead on a time-shared core (case6: gobmk+libquantum) ==")
    config = fpga_prototype("tage")
    pair = get_pair("case6", "single")
    results = {}
    for preset in ("baseline", "xor_btb", "noisy_xor_bp", "complete_flush"):
        bpu = make_bpu(config.predictor, preset, btb_sets=config.btb_sets,
                       btb_ways=config.btb_ways)
        core = SingleThreadCore(config, bpu, make_pair_workloads(pair, seed=3),
                                time_scale=200.0, syscall_time_scale=25.0)
        results[preset] = core.run(target_branches=8000, warmup_branches=2000,
                                   mechanism_name=preset)
    baseline = results["baseline"]
    rows = [[preset, f"{result.thread(pair.target).cycles:,.0f}",
             percent(result.overhead_vs(baseline, pair.target))]
            for preset, result in results.items()]
    print(render_table(["configuration", "target cycles", "overhead"], rows))
    print("(absolute percentages are inflated by the scaled-down simulation; "
          "see EXPERIMENTS.md)")
    print()


def attack_demo() -> None:
    """The point of the exercise: malicious BTB training stops working."""
    print("== 3. Spectre-V2-style malicious BTB training (PoC Listing 1) ==")
    rows = []
    for preset in ("baseline", "noisy_xor_bp"):
        result = run_attack("spectre_v2_btb_training", preset, iterations=500)
        rows.append([preset, f"{100 * result.success_rate:.1f}%"])
    print(render_table(["configuration", "attack success rate"], rows))


def main() -> None:
    accuracy_demo()
    overhead_demo()
    attack_demo()


if __name__ == "__main__":
    main()
