#!/usr/bin/env python3
"""Replaying recorded branch traces through the secure predictors.

The synthetic SPEC-like workloads bundled with the package stand in for the
paper's benchmark binaries, but the CPU model happily replays *recorded*
branch traces too — e.g. ones exported from gem5, Pin, or an FPGA trace port.
This example:

1. records a segment of a synthetic workload to a (gzip-compressed) trace
   file in the package's simple text format;
2. loads it back as a :class:`repro.workloads.TraceWorkload`;
3. runs the replayed trace through the single-threaded core under the
   baseline and Noisy-XOR-BP configurations and compares cycles.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.analysis import percent, render_table
from repro.core import make_bpu
from repro.cpu import SingleThreadCore, fpga_prototype
from repro.workloads import TraceWorkload, make_workload, record_workload


def record_example_trace(path: str, benchmark: str = "gcc",
                         branches: int = 20_000) -> TraceWorkload:
    """Record a synthetic benchmark segment and load it back from disk."""
    workload = make_workload(benchmark, seed=7)
    written = record_workload(workload, branches, path)
    print(f"recorded {written} branches from {benchmark!r} to {path} "
          f"({os.path.getsize(path):,} bytes)")
    replay = TraceWorkload.from_file(path, name=f"{benchmark}_trace")
    stats = replay.stats()
    print(f"trace summary: {stats.instructions:,} instructions, "
          f"{stats.conditional} conditional branches "
          f"({100 * stats.taken_ratio:.1f}% taken), "
          f"{stats.distinct_pcs} distinct branch PCs")
    return replay


def replay_under_mechanisms(trace: TraceWorkload) -> None:
    """Run the recorded trace under several isolation mechanisms."""
    config = fpga_prototype("tage")
    results = {}
    for preset in ("baseline", "xor_bp", "noisy_xor_bp", "complete_flush"):
        bpu = make_bpu(config.predictor, preset, btb_sets=config.btb_sets,
                       btb_ways=config.btb_ways)
        core = SingleThreadCore(config, bpu, [trace], time_scale=200.0)
        results[preset] = core.run(target_branches=15_000, warmup_branches=3_000,
                                   mechanism_name=preset)
    baseline = results["baseline"]
    rows = [[preset,
             f"{result.cycles:,.0f}",
             f"{result.thread(trace.name).direction_accuracy:.3f}",
             percent(result.overhead_vs(baseline, trace.name))]
            for preset, result in results.items()]
    print(render_table(
        ["configuration", "cycles", "direction accuracy", "overhead"], rows,
        title="Replaying the recorded trace under different mechanisms"))
    print("(absolute percentages are inflated by the scaled-down simulation; "
          "see EXPERIMENTS.md)")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "gcc_segment.trace.gz")
        trace = record_example_trace(path)
        print()
        replay_under_mechanisms(trace)


if __name__ == "__main__":
    main()
