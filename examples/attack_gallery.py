#!/usr/bin/env python3
"""Attack gallery: every attack class of Section 2 against every mechanism.

Reproduces, at example scale, the qualitative content of Table 1: which
mechanisms defend, mitigate or fail against reuse-based and contention-based
attacks on a single-threaded core and on an SMT core.

Run:  python examples/attack_gallery.py
"""

from repro.analysis import render_table
from repro.attacks import run_attack
from repro.security import classify_success_rate

SINGLE_THREAD_ATTACKS = [
    ("spectre_v2_btb_training", "BTB reuse (malicious training)"),
    ("branch_shadowing", "BTB reuse (perception)"),
    ("sbpa", "BTB contention"),
    ("branchscope", "PHT reuse (perception)"),
]

SMT_ATTACKS = [
    ("spectre_v2_btb_training", "BTB reuse (malicious training)"),
    ("jump_over_aslr", "BTB contention (ASLR bypass)"),
    ("branchscope", "PHT reuse (perception)"),
    ("branchscope_calibrated", "PHT reuse (calibrated)"),
]

MECHANISMS = ["baseline", "complete_flush", "precise_flush", "xor_bp", "noisy_xor_bp"]


def gallery(attacks, smt: bool, iterations: int = 150) -> str:
    rows = []
    for attack_name, description in attacks:
        row = [description]
        for mechanism in MECHANISMS:
            result = run_attack(attack_name, mechanism, smt=smt,
                                iterations=iterations)
            verdict = classify_success_rate(result.success_rate, result.chance_level)
            row.append(f"{100 * result.success_rate:.0f}% ({verdict.value[0]})")
        rows.append(row)
    return render_table(["attack"] + MECHANISMS, rows)


def main() -> None:
    print("Success rates; (D)=Defend, (M)=Mitigate, (N)=No Protection\n")
    print("== Single-threaded core (attacker and victim time-share the core) ==")
    print(gallery(SINGLE_THREAD_ATTACKS, smt=False))
    print()
    print("== SMT core (attacker runs concurrently on the sibling thread) ==")
    print(gallery(SMT_ATTACKS, smt=True))
    print()
    print("Compare with Table 1 of the paper: flush-based mechanisms lose their "
          "protection on SMT cores, content encoding (XOR-BP) stops reuse "
          "attacks, and only index randomisation (Noisy-XOR-BP) blunts "
          "contention-based attacks such as Jump-over-ASLR.")


if __name__ == "__main__":
    main()
