#!/usr/bin/env python3
"""Hardware cost study: what does Noisy-XOR-BP cost in area and delay?

Table 5 of the paper reports RTL synthesis results (TSMC 28 nm) for the
Noisy-XOR-BP additions to a 2-way BTB and a TAGE pattern history table.  The
package reproduces the *shape* of that table with an analytic gate/SRAM model
(:mod:`repro.hwcost`); this example sweeps the structure sizes well beyond the
three points the paper shows and prints where the overheads go as tables grow.

Run:  python examples/hwcost_report.py
"""

from repro.analysis import render_table, sweep
from repro.hwcost import btb_cost, btb_energy, pht_energy, tage_pht_cost


def btb_sweep() -> None:
    """Noisy-XOR-BTB cost across BTB geometries."""
    result = sweep(
        {"entries_per_way": [128, 256, 512, 1024, 2048],
         "n_ways": [2, 4]},
        lambda entries_per_way, n_ways: btb_cost(entries_per_way, n_ways),
        metric="estimate")
    rows = [[f"{point.params['n_ways']}w{point.params['entries_per_way']}",
             f"{100 * point.value.timing_overhead:.2f}%",
             f"{100 * point.value.area_overhead:.3f}%"]
            for point in result.points]
    print(render_table(["BTB geometry", "timing overhead", "area overhead"], rows,
                       title="Noisy-XOR-BTB cost (Table 5 model, extended sweep)"))
    print()


def pht_sweep() -> None:
    """Noisy-XOR-PHT cost across TAGE table sizes."""
    result = sweep(
        {"entries_per_table": [1024, 2048, 4096, 8192],
         "n_tables": [6, 12]},
        lambda entries_per_table, n_tables: tage_pht_cost(entries_per_table, n_tables),
        metric="estimate")
    rows = [[f"{point.params['entries_per_table']} x {point.params['n_tables']} tables",
             f"{100 * point.value.timing_overhead:.2f}%",
             f"{100 * point.value.area_overhead:.3f}%"]
            for point in result.points]
    print(render_table(["TAGE PHT geometry", "timing overhead", "area overhead"], rows,
                       title="Noisy-XOR-PHT cost (Table 5 model, extended sweep)"))
    print()


def paper_points() -> None:
    """The exact six configurations Table 5 reports."""
    rows = []
    for entries in (128, 256, 512):
        estimate = btb_cost(entries, 2)
        rows.append([f"BTB 2w{entries}", f"{100 * estimate.timing_overhead:.2f}%",
                     f"{100 * estimate.area_overhead:.2f}%"])
    for entries in (1024, 2048, 4096):
        estimate = tage_pht_cost(entries)
        rows.append([f"TAGE PHT {entries}/table", f"{100 * estimate.timing_overhead:.2f}%",
                     f"{100 * estimate.area_overhead:.2f}%"])
    print(render_table(["structure", "timing overhead", "area overhead"], rows,
                       title="Table 5 configurations"))
    print("Paper: BTB timing 0.70-1.46%, area 0.13-0.24%; "
          "PHT timing ~2%, area 0.03-0.11%.")
    print()


def energy_report() -> None:
    """Per-access dynamic-energy overhead (extension beyond Table 5)."""
    rows = []
    for entries in (128, 256, 512):
        estimate = btb_energy(entries, 2)
        rows.append([estimate.structure, f"{estimate.baseline_fj:.0f} fJ",
                     f"{estimate.added_fj:.1f} fJ",
                     f"{100 * estimate.energy_overhead:.2f}%"])
    for entries in (1024, 2048, 4096):
        estimate = pht_energy(entries)
        rows.append([estimate.structure, f"{estimate.baseline_fj:.0f} fJ",
                     f"{estimate.added_fj:.1f} fJ",
                     f"{100 * estimate.energy_overhead:.2f}%"])
    print(render_table(["structure", "baseline access", "added", "overhead"], rows,
                       title="Per-access dynamic energy of the Noisy-XOR-BP additions"))
    print()


def main() -> None:
    paper_points()
    energy_report()
    btb_sweep()
    pht_sweep()


if __name__ == "__main__":
    main()
