#!/usr/bin/env python3
"""Protecting your own predictor: the isolation layer is predictor-agnostic.

The paper's central engineering claim is that XOR-BP / Noisy-XOR-BP attach at
the table-storage layer, so *any* predictor built on
:class:`repro.predictors.table.PredictorTable` picks up the protection without
changing its algorithm.  This example demonstrates that twice:

1. with the bundled perceptron predictor (whose per-entry state is a packed
   vector of signed weights — nothing like a 2-bit counter); and
2. with a small custom predictor written right here in the example (a
   PC-indexed table of 3-bit counters), wrapped into a full branch prediction
   unit and attacked.

In both cases the prediction accuracy barely moves under Noisy-XOR isolation,
while the BranchScope-style perception attack collapses to chance level.

Run:  python examples/custom_predictor.py
"""

from typing import List, Optional

from repro.analysis import render_table
from repro.attacks import run_attack
from repro.core import BranchPredictionUnit, KeyManager, NoisyXorIsolation
from repro.predictors import (
    BranchTargetBuffer,
    DirectionPrediction,
    DirectionPredictor,
    PerceptronPredictor,
    PredictorTable,
    ReturnAddressStack,
    counter_is_taken,
    saturating_update,
)
from repro.types import BranchType
from repro.workloads import make_workload


class WideCounterPredictor(DirectionPredictor):
    """A deliberately simple custom predictor: PC-indexed 3-bit counters.

    The point of the example is not prediction quality but that the predictor
    is written once, against :class:`PredictorTable`, and works unchanged with
    any isolation policy passed to it.
    """

    name = "wide_counter"

    def __init__(self, n_entries: int = 1024, *, isolation=None) -> None:
        super().__init__(isolation)
        self._mask = n_entries - 1
        self._table = PredictorTable(n_entries, 3, reset_value=3,
                                     name="wide_counter_pht", isolation=isolation)

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = (pc >> 2) & self._mask
        counter = self._table.read(index, thread_id)
        return DirectionPrediction(taken=counter_is_taken(counter, bits=3),
                                   meta={"index": index})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        index = (prediction.meta["index"] if prediction is not None
                 else (pc >> 2) & self._mask)
        counter = self._table.read(index, thread_id)
        self._table.write(index, saturating_update(counter, taken, bits=3), thread_id)

    def tables(self) -> List[PredictorTable]:
        return [self._table]


def build_unit(predictor: DirectionPredictor, isolation) -> BranchPredictionUnit:
    """Wire a direction predictor into a full branch prediction unit."""
    btb = BranchTargetBuffer(n_sets=256, n_ways=2, isolation=isolation)
    ras = ReturnAddressStack(depth=16)
    return BranchPredictionUnit(predictor, btb, ras, isolation=isolation)


def accuracy_of(bpu: BranchPredictionUnit, benchmark: str = "gobmk",
                branches: int = 12_000) -> float:
    """Direction accuracy of a unit on one synthetic benchmark."""
    workload = make_workload(benchmark, seed=11)
    conditional = mispredicted = 0
    for record in workload.segment(branches):
        outcome = bpu.execute_branch(record.pc, record.taken, record.target,
                                     record.branch_type)
        if record.branch_type is BranchType.CONDITIONAL:
            conditional += 1
            mispredicted += outcome.direction_mispredicted
    return 1.0 - mispredicted / conditional


def study(label: str, make_predictor) -> List[List[str]]:
    """Accuracy with and without Noisy-XOR isolation for one predictor."""
    rows = []
    for protected in (False, True):
        keys = KeyManager(seed=42)
        isolation = NoisyXorIsolation(keys) if protected else None
        predictor = make_predictor(isolation)
        bpu = build_unit(predictor, isolation)
        accuracy = accuracy_of(bpu)
        rows.append([label, "Noisy-XOR-BP" if protected else "baseline",
                     f"{accuracy:.3f}"])
    return rows


def attack_comparison() -> None:
    """The same BranchScope attack against baseline and protected units."""
    rows = []
    for mechanism in ("baseline", "noisy_xor_bp"):
        result = run_attack("branchscope", mechanism, iterations=400)
        rows.append([mechanism, f"{100 * result.success_rate:.1f}%",
                     f"{100 * result.chance_level:.0f}%"])
    print(render_table(["mechanism", "BranchScope success", "chance level"], rows))


def main() -> None:
    print("== Prediction accuracy: isolation is predictor-agnostic ==")
    rows = []
    rows += study("perceptron",
                  lambda isolation: PerceptronPredictor(n_entries=512, history_bits=16,
                                                        isolation=isolation))
    rows += study("wide_counter (custom)",
                  lambda isolation: WideCounterPredictor(isolation=isolation))
    print(render_table(["predictor", "configuration", "direction accuracy"], rows))
    print()
    print("== Perception attack against the protected unit ==")
    attack_comparison()


if __name__ == "__main__":
    main()
