"""End-to-end tests of the simulation service over real HTTP.

One module-scoped server on an OS-assigned port (``port=0``), backed by a
tiny golden-style registry, exercised through the same :class:`ServiceClient`
the CLI uses.  The headline invariants: fetched figures are **byte-identical**
to a serial ``run_serial`` of the same manifest, a warm re-submission
simulates **nothing** (100% store hits), and a fault-injected worker death
surfaces as a structured job failure — never a hung job.
"""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.engine import env_backend
from repro.experiments import fig1_flush_single, table5_hwcost
from repro.experiments.executor import RunResultCache, SweepExecutor
from repro.experiments.manifest import ExperimentDef, build_manifest
from repro.experiments.pipeline import run_serial
from repro.experiments.scaling import ExperimentScale
from repro.experiments.store import ResultStore
from repro.service import ServiceClient, ServiceError, SimulationService
from repro.workloads.pairs import SINGLE_THREAD_PAIRS

#: Deliberately tiny budgets: these tests exercise the service plumbing.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

TINY_PAIRS = SINGLE_THREAD_PAIRS[:1]

#: Registry whose plans *pin* the tiny scale (ignoring the service's base
#: scale), so jobs stay fast and byte-comparable no matter what scale the
#: scheduler resolves.  One case-based and one caseless experiment.
REGISTRY = {
    "figure1": ExperimentDef(
        "figure1",
        plan=lambda scale: fig1_flush_single.plan(TINY, pairs=TINY_PAIRS),
        assemble=lambda scale, executor: fig1_flush_single.run(
            TINY, pairs=TINY_PAIRS, executor=executor)),
    "table5": ExperimentDef(
        "table5",
        plan=lambda scale: [],
        assemble=lambda scale, executor: table5_hwcost.run(TINY)),
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    store = ResultStore(str(root / "store"))
    svc = SimulationService(store, str(root / "data"), port=0, workers=2,
                            registry=REGISTRY)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=60.0)


def _run_to_done(client, payload):
    document = client.submit(payload)
    final = client.watch(document["id"])
    assert final["state"] == "done", final.get("error")
    return final


class TestLifecycle:
    def test_health(self, service, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["backend"] == env_backend()
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}

    def test_submit_watch_fetch_byte_identical(self, service, client,
                                               tmp_path):
        events = []
        document = client.submit({"experiments": ["figure1", "table5"]})
        assert document["id"].startswith("job-")
        assert len(document["manifest_hash"]) == 64
        final = client.watch(document["id"],
                             on_event=lambda e: events.append(e["event"]))
        assert final["state"] == "done"
        kinds = set(events)
        assert {"queued", "running", "done"} <= kinds
        assert "case" in kinds  # per-case progress via the on_result hook

        served = tmp_path / "served"
        written = client.fetch(document["id"], str(served))
        assert written

        # The invariant the whole service stands on: served files are the
        # exact bytes a serial run of the same manifest writes.
        manifest = build_manifest(keys=["figure1", "table5"],
                                  experiments=REGISTRY)
        assert manifest.manifest_hash() == document["manifest_hash"]
        serial = tmp_path / "serial"
        run_serial(manifest, out_dir=str(serial),
                   executor=SweepExecutor(jobs=1, cache=RunResultCache(
                       directory=False, store=False)))
        names = sorted(os.listdir(serial))
        assert sorted(os.listdir(served)) == names
        for name in names:
            assert (served / name).read_bytes() == \
                (serial / name).read_bytes(), name

    def test_job_completion_registers_the_manifest(self, service, client):
        final = _run_to_done(client, {"experiments": ["figure1"]})
        assert final["manifest_hash"] in service.scheduler.store.manifests()

    def test_journal_mirrors_the_event_log(self, service, client):
        final = _run_to_done(client, {"experiments": ["table5"]})
        job = service.scheduler.queue.get(final["id"])
        with open(job.journal_path, "r", encoding="utf-8") as handle:
            journaled = [json.loads(line) for line in handle]
        assert [event["event"] for event in journaled] == \
            [event["event"] for event in job.events]

    def test_warm_resubmission_serves_everything_from_the_store(
            self, service, client):
        payload = {"experiments": ["figure1", "table5"]}
        _run_to_done(client, payload)
        final = _run_to_done(client, payload)
        stats = final["stats"]
        assert stats["simulated"] == 0
        assert stats["store_hits"] == stats["unique"] > 0
        # The CI grep's exact format (shared with the CLI's _stats_line).
        line = ServiceClient(service.url).stats_line(final)
        assert line == (f"cases: {stats['unique']} unique, 0 simulated, "
                        f"{stats['unique']} store hit(s)")

    def test_concurrent_jobs_both_complete(self, service, client):
        first = client.submit({"experiments": ["figure1"]})
        second = client.submit({"experiments": ["table5"],
                                "scale": 0.5})
        done_first = client.watch(first["id"])
        done_second = client.watch(second["id"])
        assert done_first["state"] == "done"
        assert done_second["state"] == "done"
        listed = {document["id"] for document in client.jobs()}
        assert {first["id"], second["id"]} <= listed


class TestValidation:
    def test_unknown_experiment_is_http_400(self, client):
        with pytest.raises(ServiceError, match="unknown experiments: "
                                               "nope") as excinfo:
            client.submit({"experiments": ["nope"]})
        assert excinfo.value.status == 400

    def test_unknown_field_is_http_400(self, client):
        with pytest.raises(ServiceError, match="unknown field.*'repetitons'"):
            client.submit({"repetitons": 3})

    def test_bad_scale_is_http_400(self, client):
        with pytest.raises(ServiceError, match="field 'scale'"):
            client.submit({"scale": "abc"})

    def test_backend_mismatch_is_http_400(self, client):
        other = "numpy" if env_backend() == "python" else "python"
        with pytest.raises(ServiceError,
                           match="field 'backend'") as excinfo:
            client.submit({"experiments": ["figure1"], "backend": other})
        assert excinfo.value.status == 400

    def test_matching_backend_assertion_is_accepted(self, service, client):
        final = _run_to_done(client, {"experiments": ["table5"],
                                      "backend": env_backend()})
        assert final["state"] == "done"

    def test_invalid_json_body_is_http_400(self, service):
        request = urllib.request.Request(
            f"{service.url}/v1/jobs", data=b"not json at all",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.loads(
            excinfo.value.read().decode("utf-8"))["error"]

    def test_unknown_job_is_http_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-9999-deadbeef")
        assert excinfo.value.status == 404

    def test_file_requests_cannot_escape_the_job_dir(self, service, client):
        final = _run_to_done(client, {"experiments": ["table5"]})
        # Traversal shapes and dotfiles are malformed names (400); a
        # well-formed name that does not exist is a plain 404.
        for name, expected in (("..%2fjournal.jsonl", 400),
                               (".hidden", 400),
                               ("no-such-file.json", 404)):
            with pytest.raises(ServiceError) as excinfo:
                with client._open(f"/v1/jobs/{final['id']}/files/{name}"):
                    pass
            assert excinfo.value.status == expected, name


class TestReport:
    def test_report_of_a_done_job_is_self_contained_html(self, service,
                                                         client):
        from repro.experiments.executor import ENGINE_VERSION

        final = _run_to_done(client, {"experiments": ["figure1", "table5"]})
        with client._open(f"/v1/jobs/{final['id']}/report") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            body = response.read().decode("utf-8")
        # Provenance pins the job to its manifest, engine and stats line.
        assert final["manifest_hash"] in body
        assert ENGINE_VERSION in body
        assert ServiceClient(service.url).stats_line(final) in body
        assert final["id"] in body
        # Self-contained: figures inline as SVG, no external fetches.
        assert "<svg" in body
        assert "<script" not in body

    def test_report_of_an_unknown_job_is_http_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            with client._open("/v1/jobs/job-nope/report"):
                pass
        assert excinfo.value.status == 404


class TestFederation:
    def test_ingest_url_federates_a_live_service_store(self, service, client,
                                                       tmp_path):
        _run_to_done(client, {"experiments": ["figure1"]})
        source = service.scheduler.store
        federated = ResultStore(str(tmp_path / "federated"))
        added, skipped = federated.ingest_url(
            f"{service.url}/v1/store/export")
        assert added + skipped == len(source)
        assert federated.keys() == source.keys()
        assert federated.verify()["corrupt"] == []

    def test_manifest_scoped_export_over_http(self, service, client,
                                              tmp_path):
        final = _run_to_done(client, {"experiments": ["figure1"]})
        manifest_hash = final["manifest_hash"]
        scoped = ResultStore(str(tmp_path / "scoped"))
        added, skipped = scoped.ingest_url(
            f"{service.url}/v1/store/export?manifest={manifest_hash}")
        expected = service.scheduler.store.manifest_keys(manifest_hash)
        assert added + skipped == len(expected)
        assert scoped.keys() == expected

    def test_bad_manifest_scope_is_http_400(self, service, tmp_path):
        target = ResultStore(str(tmp_path / "bad"))
        with pytest.raises(ValueError, match="HTTP Error 400"):
            target.ingest_url(f"{service.url}/v1/store/export?manifest=zzz")


class TestFaultInjection:
    def test_worker_death_is_a_structured_failure_not_a_hang(
            self, service, client, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:key~service:job")
        document = client.submit({"experiments": ["figure1"]})
        final = client.watch(document["id"])
        assert final["state"] == "failed"
        assert "InjectedCrash" in final["error"]
        assert final["id"] in final["error"]  # the stage names the job
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        # The worker thread survived its job's death and takes the next one.
        assert _run_to_done(client, {"experiments": ["table5"]})

    def test_case_level_faults_surface_as_structured_failures(
            self, service, client, monkeypatch):
        # attempts=99 keeps the fault firing past any retry budget;
        # retries=0 keeps the test from sleeping through backoff.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "fail:attempts=99")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        # Extra repetitions plan seed-variant cases earlier tests have not
        # published, so the store cannot satisfy the job without simulating
        # (a store hit would bypass the injected fault entirely).
        document = client.submit({"experiments": ["figure1"],
                                  "repetitions": 3})
        final = client.watch(document["id"])
        assert final["state"] == "failed"
        assert final["failures"], "expected structured CaseFailure records"
        record = final["failures"][0]
        assert record["error"] == "InjectedFault"
        assert record["attempts"] >= 1


class TestServerEdges:
    """Edge paths of the HTTP layer, driven against a worker-less service
    (the HTTP thread runs, the scheduler does not, so jobs stay queued)."""

    @pytest.fixture()
    def idle_service(self, tmp_path):
        import threading

        svc = SimulationService(ResultStore(str(tmp_path / "store")),
                                str(tmp_path / "data"), port=0,
                                registry=REGISTRY)
        thread = threading.Thread(target=svc._httpd.serve_forever,
                                  daemon=True)
        thread.start()
        yield svc
        svc._httpd.shutdown()
        svc._httpd.server_close()

    def test_files_of_an_unfinished_job_are_http_409(self, idle_service):
        client = ServiceClient(idle_service.url)
        document = client.submit({"experiments": ["table5"]})
        assert document["state"] == "queued"
        with pytest.raises(ServiceError, match="is queued") as excinfo:
            client.fetch(document["id"], "unused")
        assert excinfo.value.status == 409

    def test_report_of_an_unfinished_job_is_http_409(self, idle_service):
        client = ServiceClient(idle_service.url)
        document = client.submit({"experiments": ["table5"]})
        with pytest.raises(ServiceError, match="once it is done") as excinfo:
            with client._open(f"/v1/jobs/{document['id']}/report"):
                pass
        assert excinfo.value.status == 409

    def test_unknown_paths_are_http_404(self, idle_service):
        client = ServiceClient(idle_service.url)
        for path in ("/nope", "/v1", "/v1/jobs/x/files/y/z"):
            with pytest.raises(ServiceError) as excinfo:
                with client._open(path):
                    pass
            assert excinfo.value.status == 404, path
        request = urllib.request.Request(f"{idle_service.url}/v2/jobs",
                                         data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_malformed_events_cursor_is_http_400(self, idle_service):
        client = ServiceClient(idle_service.url)
        document = client.submit({"experiments": ["table5"]})
        with pytest.raises(ServiceError, match="'from' must be an integer"):
            with client._open(f"/v1/jobs/{document['id']}/events?from=x"):
                pass

    def test_malformed_content_length_is_http_400(self, idle_service):
        import http.client

        conn = http.client.HTTPConnection(idle_service.host,
                                          idle_service.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/jobs")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestSchedulerUnits:
    def test_scheduler_requires_a_store_and_workers(self, tmp_path):
        from repro.service import JobScheduler

        with pytest.raises(ValueError, match="REPRO_STORE_DIR"):
            JobScheduler(None, str(tmp_path))
        with pytest.raises(ValueError, match="workers must be"):
            JobScheduler(ResultStore(str(tmp_path / "s")), str(tmp_path),
                         workers=0)

    def test_submit_accepts_a_prevalidated_request(self, tmp_path):
        from repro.service import JobRequest, JobScheduler

        scheduler = JobScheduler(ResultStore(str(tmp_path / "s")),
                                 str(tmp_path / "d"), registry=REGISTRY)
        job = scheduler.submit(JobRequest(experiments=["table5"]))
        assert job.state == "queued"
        assert scheduler.queue.get(job.id) is job

    def test_job_wait_reaches_the_terminal_state(self, tmp_path):
        from repro.service import JobScheduler

        scheduler = JobScheduler(ResultStore(str(tmp_path / "s")),
                                 str(tmp_path / "d"), registry=REGISTRY)
        scheduler.start()
        try:
            job = scheduler.submit({"experiments": ["table5"]})
            assert job.wait(timeout=30.0)
            assert job.state == "done"
        finally:
            scheduler.stop()

    def test_empty_queue_pop_times_out_to_none(self):
        from repro.service import JobQueue

        assert JobQueue().next_job(timeout=0.05) is None
