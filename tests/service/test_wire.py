"""Tests for the service wire layer: strict submission parsing.

Every field of a job submission must fail with the exact named error the
corresponding CLI flag would produce, at parse time — and unknown fields are
rejected outright, so a typo'd field can never silently run with a default.
"""

import pytest

from repro.service import JobRequest, parse_job_request, parse_port


class TestParseJobRequest:
    def test_empty_object_plans_everything(self):
        request = parse_job_request({})
        assert request == JobRequest()
        assert request.manifest_keys() is None

    def test_experiments_and_bench_sets_combine(self):
        request = parse_job_request(
            {"experiments": ["figure1"], "bench_sets": ["unconditional"]})
        assert request.manifest_keys() == ["figure1", "bench:unconditional"]

    def test_bare_bench_set_plans_only_the_selector(self):
        request = parse_job_request({"bench_sets": ["spec:2"]})
        assert request.manifest_keys() == ["bench:spec:2"]

    def test_non_object_body_rejected(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            parse_job_request([1, 2, 3])

    def test_unknown_field_rejected_and_named(self):
        # The service-shaped version of the silent REPRO_SCALE fallback:
        # a typo'd field must never run with the default it shadowed.
        with pytest.raises(ValueError, match="unknown field.*'repetitons'"):
            parse_job_request({"repetitons": 3})

    @pytest.mark.parametrize("raw", [[], ["  "], [1], "figure1"])
    def test_bad_experiment_list_rejected(self, raw):
        with pytest.raises(ValueError, match="'experiments' must be a "
                                             "non-empty list"):
            parse_job_request({"experiments": raw})

    def test_bad_scale_names_the_field(self):
        with pytest.raises(ValueError, match="field 'scale' must be a "
                                             "number"):
            parse_job_request({"scale": "abc"})

    def test_scale_clamped_like_the_cli_flag(self):
        assert parse_job_request({"scale": 0.001}).scale == 0.05

    def test_bad_repetitions_names_the_field(self):
        with pytest.raises(ValueError, match="field 'repetitions'"):
            parse_job_request({"repetitions": 0})

    def test_bad_backend_names_the_field(self):
        with pytest.raises(ValueError, match="field 'backend'"):
            parse_job_request({"backend": "fortran"})
        with pytest.raises(ValueError, match="field 'backend' must be a "
                                             "string"):
            parse_job_request({"backend": 7})

    def test_source_attribution_propagates(self):
        with pytest.raises(ValueError, match="^POST body field 'scale'"):
            parse_job_request({"scale": -1}, source="POST body")

    def test_to_wire_round_trips(self):
        request = parse_job_request(
            {"experiments": ["figure1"], "scale": 0.25, "repetitions": 3})
        assert parse_job_request(request.to_wire()) == request

    def test_to_wire_omits_defaults(self):
        assert JobRequest().to_wire() == {}


class TestParsePort:
    def test_valid_and_zero(self):
        assert parse_port("8378") == 8378
        assert parse_port(0) == 0  # OS-assigned; the serve banner reports it

    @pytest.mark.parametrize("raw", ["abc", None, 1.5])
    def test_non_integer_rejected(self, raw):
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT must be an "
                                             "integer port"):
            parse_port(raw)

    @pytest.mark.parametrize("raw", [-1, 65536])
    def test_out_of_range_rejected(self, raw):
        with pytest.raises(ValueError, match=r"\[0, 65535\]"):
            parse_port(raw, source="--port")

    def test_source_named(self):
        with pytest.raises(ValueError, match="^--port"):
            parse_port("x", source="--port")
