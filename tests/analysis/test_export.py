"""Tests for experiment-result serialisation."""

import json

import pytest

from repro.analysis import (
    FigureSeries,
    figure_from_dict,
    figure_to_dict,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_figure_csv,
    save_result_json,
    save_results_json,
)
from repro.experiments.base import ExperimentResult


def _sample_figure() -> FigureSeries:
    figure = FigureSeries(name="Figure X", description="sample",
                          categories=["case1", "case2", "case3"])
    figure.add_series("XOR-BP", [0.01, 0.02, 0.03])
    figure.add_series("CF", [0.02, 0.04, 0.06])
    return figure


def _sample_result(with_figure: bool = True) -> ExperimentResult:
    return ExperimentResult(
        name="Figure X",
        description="sample experiment",
        headers=["case", "overhead"],
        rows=[["case1", "+1.00%"], ["case2", "+2.00%"]],
        figure=_sample_figure() if with_figure else None,
        paper_claim="overhead is small",
        notes="unit-test fixture")


class TestFigureCodec:
    def test_round_trip_preserves_series(self):
        figure = _sample_figure()
        rebuilt = figure_from_dict(figure_to_dict(figure))
        assert rebuilt.categories == figure.categories
        assert rebuilt.series == figure.series
        assert rebuilt.unit == figure.unit

    def test_dict_is_json_serialisable(self):
        payload = json.dumps(figure_to_dict(_sample_figure()))
        assert "XOR-BP" in payload

    def test_missing_unit_defaults(self):
        data = figure_to_dict(_sample_figure())
        del data["unit"]
        assert figure_from_dict(data).unit == "fraction"


class TestResultCodec:
    def test_round_trip_with_figure(self):
        result = _sample_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.name == result.name
        assert rebuilt.rows == [list(row) for row in result.rows]
        assert rebuilt.figure is not None
        assert rebuilt.figure.averages() == result.figure.averages()
        assert rebuilt.paper_claim == result.paper_claim

    def test_round_trip_without_figure(self):
        rebuilt = result_from_dict(result_to_dict(_sample_result(with_figure=False)))
        assert rebuilt.figure is None

    def test_rendering_survives_round_trip(self):
        result = _sample_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.render() == result.render()


class TestFileIO:
    def test_save_and_load_json(self, tmp_path):
        result = _sample_result()
        path = str(tmp_path / "out" / "figure_x.json")
        assert save_result_json(result, path) == path
        loaded = load_result_json(path)
        assert loaded.name == result.name
        assert loaded.figure.series == result.figure.series

    def test_save_many_results(self, tmp_path):
        path = str(tmp_path / "all.json")
        save_results_json([_sample_result(), _sample_result(with_figure=False)], path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload) == 2
        assert payload[1]["figure"] is None

    def test_save_figure_csv(self, tmp_path):
        path = str(tmp_path / "figure.csv")
        assert save_figure_csv(_sample_result(), path) == path
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        assert "case1" in content
        assert content.endswith("\n")

    def test_save_figure_csv_without_figure_is_noop(self, tmp_path):
        path = str(tmp_path / "figure.csv")
        assert save_figure_csv(_sample_result(with_figure=False), path) is None
