"""Tests for the self-contained HTML report renderer.

The load-bearing property is byte-stability: the report is a pure function
of its inputs, so rendering the same results twice must produce identical
bytes (this is what lets CI diff and grep report artifacts).  The rest pins
the structural contract — valid inline SVG, whiskers only when error bars
exist, faceting over the palette budget, escaping, and the self-containment
guarantee (no external fetches).
"""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import FigureSeries
from repro.analysis.htmlreport import (
    PALETTE_DARK,
    PALETTE_LIGHT,
    build_html_report,
    render_figure_svg,
    render_html_report,
)
from repro.analysis.report import PAPER_EXPECTATIONS
from repro.experiments.base import ExperimentResult


def _figure(series, errors=None, categories=("gcc", "mcf"), name="Figure 3"):
    figure = FigureSeries(name=name, description="overhead",
                          categories=list(categories))
    errors = errors or {}
    for label, values in series.items():
        figure.add_series(label, values, errors=errors.get(label))
    return figure


def _results():
    folded = _figure({"Complete Flush": [0.031, 0.045],
                      "Precise Flush": [0.009, 0.013]},
                     errors={"Complete Flush": [0.004, 0.006],
                             "Precise Flush": [0.002, 0.002]})
    replicates = [
        _figure({"Complete Flush": [0.029, 0.042],
                 "Precise Flush": [0.008, 0.012]}),
        _figure({"Complete Flush": [0.033, 0.048],
                 "Precise Flush": [0.010, 0.014]}),
    ]
    figure3 = ExperimentResult(
        name="Figure 3", description="flush overheads", figure=folded,
        replicates=replicates, paper_claim="CF ~8x PF",
        notes="2 repetitions")
    table5 = ExperimentResult(
        name="Table 5", description="hardware cost",
        headers=["structure", "area"], rows=[["BTB", "0.15%"]])
    return {"figure3": figure3, "table5": table5}


_PROVENANCE = {"Engine": "test-engine", "Manifest": "cafe" * 16,
               "Executor": "cases: 4 unique, 0 simulated, 4 store hit(s)"}


class TestFigureSvg:
    def test_svg_is_well_formed_xml(self):
        svg = render_figure_svg(_figure({"a": [0.01, -0.02]}))
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_whiskers_only_with_error_bars(self):
        plain = render_figure_svg(_figure({"a": [0.01, 0.02]}))
        assert 'stroke="var(--ink-2)"' not in plain
        with_ci = render_figure_svg(_figure({"a": [0.01, 0.02]},
                                            errors={"a": [0.002, 0.003]}))
        # One vertical whisker + two caps per bar, two bars.
        assert with_ci.count('stroke="var(--ink-2)"') == 6

    def test_tooltips_name_category_series_and_value(self):
        svg = render_figure_svg(_figure({"CF": [0.0123, 0.02]}))
        assert "<title>gcc · CF: +1.23%</title>" in svg

    def test_escaping_of_hostile_labels(self):
        svg = render_figure_svg(_figure({"<b>&": [0.01, 0.02]},
                                        categories=("a<c", "d&e")))
        assert "<b>&" not in svg.replace("&lt;b&gt;&amp;", "")
        ET.fromstring(svg)  # still well-formed after escaping

    def test_fraction_axis_labelled_in_percent(self):
        svg = render_figure_svg(_figure({"a": [0.01, 0.02]}))
        assert "%</text>" in svg

    def test_fills_use_palette_variables_only(self):
        svg = render_figure_svg(_figure({"a": [0.01, 0.02],
                                         "b": [0.02, 0.03]}))
        assert "fill:var(--s1)" in svg
        assert "fill:var(--s2)" in svg
        for hex_color in PALETTE_LIGHT + PALETTE_DARK:
            assert hex_color not in svg


class TestRenderReport:
    def test_byte_stability(self):
        first = render_html_report(_results(), _PROVENANCE)
        second = render_html_report(_results(), _PROVENANCE)
        assert first == second

    def test_self_contained(self):
        html = render_html_report(_results(), _PROVENANCE)
        assert re.search(r'\bsrc=|\bhref=|url\(|@import', html) is None
        assert "<script" not in html

    def test_provenance_block_embeds_every_field(self):
        html = render_html_report(_results(), _PROVENANCE)
        for field, value in _PROVENANCE.items():
            assert field in html
            assert value in html

    def test_dark_mode_palette_is_present(self):
        html = render_html_report(_results(), _PROVENANCE)
        assert "prefers-color-scheme: dark" in html
        assert PALETTE_LIGHT[0] in html
        assert PALETTE_DARK[0] in html

    def test_expectations_table_covers_every_paper_artefact(self):
        html = render_html_report(_results(), _PROVENANCE)
        assert html.count("(not run)") == len(PAPER_EXPECTATIONS) - 2
        for expectation in PAPER_EXPECTATIONS.values():
            assert expectation.artefact in html

    def test_expectations_mark_empty_results(self):
        results = {"figure1": ExperimentResult(name="Figure 1",
                                               description="empty")}
        html = render_html_report(results, _PROVENANCE)
        assert "(empty result)" in html
        assert "(empty result: no figure and no rows)" in html

    def test_value_table_accompanies_each_chart(self):
        html = render_html_report(_results(), _PROVENANCE)
        assert "Value table · Figure 3" in html
        assert "+3.10±0.40%" in html  # chart value readable as text

    def test_without_matrices_suggests_repetitions(self):
        results = {"table5": _results()["table5"]}
        html = render_html_report(results, _PROVENANCE)
        assert "--repetitions N" in html

    def test_significance_matrices_render_as_tables(self):
        html = build_html_report(_results(), _PROVENANCE, include_pareto=False)
        assert "p (Holm)" in html
        assert "per-seed" in html
        assert "Complete Flush vs Precise Flush" in html

    def test_pareto_table_rows_flagged(self):
        pareto = (["mechanism", "Pareto-optimal"],
                  [["Baseline", "yes"], ["Complete Flush", "no"]],
                  [True, False])
        html = render_html_report(_results(), _PROVENANCE, pareto=pareto)
        assert 'class="frontier"' in html
        assert "Pareto" in html


class TestFaceting:
    def _wide_result(self):
        series = {f"{predictor}-{suffix}": [0.01 * (i + 1), 0.02]
                  for i, predictor in enumerate(
                      ("gshare", "tournament", "ltage", "tage"))
                  for suffix in ("CF", "PF", "Noisy")}
        figure = _figure(series, name="Figure 10")
        return {"figure10": ExperimentResult(name="Figure 10",
                                             description="smt", figure=figure)}

    def test_twelve_series_facet_per_mechanism_suffix(self):
        html = render_html_report(self._wide_result(), _PROVENANCE)
        # One panel per suffix, captioned by the mechanism.
        for suffix in ("CF", "PF", "Noisy"):
            assert f"<figcaption>{suffix}</figcaption>" in html
        # Prefixes are the colour-stable legend entries, not 12 series.
        assert html.count('<div class="legend">') == 1
        assert ">gshare<" in html

    def test_ungroupable_overflow_chunks_into_panels(self):
        series = {f"s{i:02d}": [0.01, 0.02] for i in range(10)}
        figure = _figure(series, name="Wide")
        results = {"figure9": ExperimentResult(name="Wide", description="d",
                                               figure=figure)}
        html = render_html_report(results, _PROVENANCE)
        assert html.count("<svg") == 2  # 8 + 2 series panels


class TestBuildReport:
    def test_full_build_is_deterministic_including_pareto(self):
        first = build_html_report(_results(), _PROVENANCE,
                                  leakage_trials=20, bootstrap_resamples=10)
        second = build_html_report(_results(), _PROVENANCE,
                                   leakage_trials=20, bootstrap_resamples=10)
        assert first == second
        assert "Pareto" in first
        assert "bits/trial" in first

    def test_single_repetition_report_has_no_whiskers(self):
        figure = _figure({"Complete Flush": [0.03, 0.04],
                          "Precise Flush": [0.01, 0.01]})
        results = {"figure3": ExperimentResult(name="Figure 3",
                                               description="d", figure=figure)}
        html = build_html_report(results, _PROVENANCE, include_pareto=False)
        assert 'stroke="var(--ink-2)"' not in html
        assert "per-case (single seed)" in html
