"""Tests for the generic parameter-sweep helper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import FigureSeries, SweepResult, sweep


class TestSweepEvaluation:
    def test_cartesian_product_size_and_order(self):
        calls = []

        def evaluate(a, b):
            calls.append((a, b))
            return a * 10 + b

        result = sweep({"a": [1, 2], "b": [3, 4, 5]}, evaluate)
        assert len(result.points) == 6
        # The last axis varies fastest.
        assert calls[:3] == [(1, 3), (1, 4), (1, 5)]
        assert [point.value for point in result.points[:3]] == [13, 14, 15]

    def test_fixed_kwargs_forwarded(self):
        result = sweep({"x": [1, 2, 3]}, lambda x, offset: x + offset, offset=100)
        assert result.values() == [101, 102, 103]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, lambda: 0)

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                    max_size=8, unique=True))
    def test_every_axis_value_appears_exactly_once(self, values):
        result = sweep({"x": values}, lambda x: x)
        assert result.values() == values


class TestSweepResultHelpers:
    def _simple(self) -> SweepResult:
        return sweep({"size": [128, 256, 512], "ways": [2, 4]},
                     lambda size, ways: size * ways)

    def test_best_minimise_and_maximise(self):
        result = self._simple()
        assert result.best().params == {"size": 128, "ways": 2}
        assert result.best(minimise=False).params == {"size": 512, "ways": 4}

    def test_best_of_empty_sweep_raises(self):
        empty = SweepResult(axes={"x": [1]})
        with pytest.raises(ValueError):
            empty.best()

    def test_filtered_selects_matching_points(self):
        result = self._simple()
        points = result.filtered(ways=4)
        assert len(points) == 3
        assert all(point.params["ways"] == 4 for point in points)

    def test_rows_and_render(self):
        result = self._simple()
        rows = result.to_rows()
        assert rows[0] == [128, 2, 256]
        rendered = result.render(title="sweep")
        assert "size" in rendered
        assert "value" in rendered

    def test_metric_label_used_in_render(self):
        result = sweep({"x": [1]}, lambda x: x, metric="overhead")
        assert "overhead" in result.render()


class TestPivotToFigure:
    def test_two_axis_pivot(self):
        result = sweep({"interval": [4, 8, 12], "mechanism": ["cf", "xor"]},
                       lambda interval, mechanism: interval * (2 if mechanism == "cf" else 1))
        figure = result.to_figure("interval", "mechanism", name="sweep figure")
        assert isinstance(figure, FigureSeries)
        assert figure.categories == ["4", "8", "12"]
        assert figure.series["cf"] == [8.0, 16.0, 24.0]
        assert figure.series["xor"] == [4.0, 8.0, 12.0]

    def test_unknown_axis_raises(self):
        result = sweep({"x": [1]}, lambda x: x)
        with pytest.raises(KeyError):
            result.to_figure("nope", "x")

    def test_missing_point_detected(self):
        result = sweep({"x": [1, 2], "y": [1]}, lambda x, y: x + y)
        result.points = result.points[:1]  # simulate an incomplete sweep
        with pytest.raises(ValueError):
            result.to_figure("x", "y")
