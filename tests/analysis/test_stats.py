"""Tests for the repetition-statistics layer.

The fold is the piece every repetition-averaged figure rests on, so it is
pinned from three sides: the scalar summaries against hand-computed values,
the figure fold against per-point expectations (including the single-input
identity that keeps ``repetitions=1`` bit-identical), and the error-bar
plumbing through render/CSV/JSON round trips.
"""

import json
import math

import pytest

from repro.analysis.export import (
    figure_from_dict,
    figure_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.analysis.figures import FigureSeries
from repro.analysis.stats import (
    DegreesOfFreedomRangeError,
    PointStats,
    T_CRITICAL_95_MAX_DF,
    fold_experiment_results,
    fold_figures,
    summarize,
    t_critical_95,
)
from repro.experiments.base import ExperimentResult


class TestTCritical:
    def test_tabulated_small_sample_values(self):
        assert t_critical_95(1) == 12.706
        assert t_critical_95(2) == 4.303
        assert t_critical_95(30) == 2.042

    def test_interpolation_hits_the_textbook_anchors(self):
        assert t_critical_95(40) == 2.021
        assert t_critical_95(60) == 2.000
        assert t_critical_95(120) == 1.980

    def test_interpolation_between_anchors_is_monotone_and_tight(self):
        # Interpolated values sit strictly between the bracketing anchors
        # and decrease with df (the t distribution tightens monotonically).
        previous = t_critical_95(30)
        for df in range(31, 121):
            value = t_critical_95(df)
            assert 1.980 <= value <= previous
            previous = value
        # Spot-check against the textbook value for df=50 (2.009).
        assert t_critical_95(50) == pytest.approx(2.009, abs=1e-3)

    def test_beyond_table_range_raises_named_error(self):
        # The historical behaviour silently clamped to the normal 1.96;
        # out-of-range repetition counts must now fail loudly, by name.
        for df in (T_CRITICAL_95_MAX_DF + 1, 1000):
            with pytest.raises(DegreesOfFreedomRangeError):
                t_critical_95(df)
        assert issubclass(DegreesOfFreedomRangeError, ValueError)

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestSummarize:
    def test_single_sample_has_no_spread(self):
        stats = summarize([0.25])
        assert stats == PointStats(mean=0.25, std=0.0, ci95=0.0, n=1)

    def test_known_three_sample_statistics(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        # Student t, df=2: 4.303 * 1 / sqrt(3)
        assert stats.ci95 == pytest.approx(4.303 / math.sqrt(3.0))
        assert stats.n == 3

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


def _figure(values_by_series, errors_by_series=None, categories=("c1", "c2")):
    figure = FigureSeries(name="Fig", description="test",
                          categories=list(categories))
    errors_by_series = errors_by_series or {}
    for label, values in values_by_series.items():
        figure.add_series(label, values, errors=errors_by_series.get(label))
    return figure


class TestFoldFigures:
    def test_single_figure_returned_unchanged(self):
        figure = _figure({"a": [0.1, 0.2]})
        assert fold_figures([figure]) is figure
        assert figure.errors == {}

    def test_fold_means_and_ci(self):
        reps = [_figure({"a": [1.0, 0.0]}), _figure({"a": [3.0, 0.0]})]
        folded = fold_figures(reps)
        assert folded.series["a"] == [2.0, 0.0]
        # df=1, std=sqrt(2): 12.706 * sqrt(2) / sqrt(2) = 12.706
        assert folded.errors["a"][0] == pytest.approx(12.706)
        assert folded.errors["a"][1] == 0.0

    def test_mismatched_categories_rejected(self):
        with pytest.raises(ValueError, match="categories"):
            fold_figures([_figure({"a": [1.0, 2.0]}),
                          _figure({"a": [1.0, 2.0]},
                                  categories=("c1", "other"))])

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="series"):
            fold_figures([_figure({"a": [1.0, 2.0]}),
                          _figure({"b": [1.0, 2.0]})])

    def test_zero_figures_rejected(self):
        with pytest.raises(ValueError):
            fold_figures([])


def _result(figure=None, rows=(), notes="base note"):
    return ExperimentResult(name="Exp", description="test",
                            headers=["k", "v"],
                            rows=[list(row) for row in rows],
                            figure=figure, paper_claim="claim", notes=notes)


class TestFoldExperimentResults:
    def test_single_result_is_identity(self):
        result = _result(figure=_figure({"a": [0.1, 0.2]}))
        assert fold_experiment_results([result]) is result

    def test_figure_results_get_summary_rows(self):
        reps = [_result(figure=_figure({"a": [0.1, 0.3]})),
                _result(figure=_figure({"a": [0.3, 0.5]}))]
        folded = fold_experiment_results(reps)
        assert folded.headers == ["series", "mean", "std", "95% CI"]
        assert folded.rows[0][0] == "a"
        assert folded.rows[0][1] == "+30.00%"  # mean of averages 0.2, 0.4
        assert folded.figure.series["a"] == [pytest.approx(0.2),
                                             pytest.approx(0.4)]
        assert "95% CI" in folded.notes
        assert folded.paper_claim == "claim"

    def test_figureless_results_keep_first_repetition_rows(self):
        reps = [_result(rows=[["x", 1]]), _result(rows=[["x", 2]])]
        folded = fold_experiment_results(reps)
        assert folded.rows == [["x", 1]]
        assert "seed offset 0" in folded.notes

    def test_zero_results_rejected(self):
        with pytest.raises(ValueError):
            fold_experiment_results([])


class TestErrorBarPlumbing:
    def test_replacing_a_series_drops_stale_errors(self):
        figure = _figure({"a": [0.01, 0.02]}, {"a": [0.001, 0.002]})
        figure.add_series("a", [0.03, 0.04])
        assert "a" not in figure.errors
        assert "±" not in figure.render()

    def test_add_series_validates_error_length(self):
        figure = FigureSeries(name="f", description="d", categories=["a", "b"])
        with pytest.raises(ValueError, match="error bars"):
            figure.add_series("s", [1.0, 2.0], errors=[0.1])

    def test_render_shows_plus_minus(self):
        figure = _figure({"a": [0.01, 0.02]}, {"a": [0.001, 0.002]})
        rendered = figure.render()
        assert "+1.00±0.10%" in rendered
        assert "average" in rendered

    def test_render_without_errors_is_unchanged(self):
        figure = _figure({"a": [0.01, 0.02]})
        assert "±" not in figure.render()

    def test_csv_gains_ci_column_only_with_errors(self):
        plain = _figure({"a": [0.01, 0.02]})
        assert "ci95" not in plain.to_csv()
        with_errors = _figure({"a": [0.01, 0.02]}, {"a": [0.001, 0.002]})
        lines = with_errors.to_csv().splitlines()
        assert lines[0] == "case,a,a ci95"
        assert lines[1].startswith("c1,0.01,0.001")

    def test_average_row_carries_no_error_bar(self):
        # A mean of per-category CI half-widths is not a confidence interval
        # of the average; the average row must not present one.
        figure = _figure({"a": [0.01, 0.02]}, {"a": [0.001, 0.002]})
        average_csv = figure.to_csv().splitlines()[-1]
        assert average_csv.endswith(",")  # blank ci95 cell
        average_rendered = figure.render().splitlines()[-1]
        assert average_rendered.startswith("average")
        assert "±" not in average_rendered

    def test_json_round_trip_preserves_errors(self):
        figure = _figure({"a": [0.01, 0.02]}, {"a": [0.001, 0.002]})
        payload = json.loads(json.dumps(figure_to_dict(figure)))
        restored = figure_from_dict(payload)
        assert restored.series == figure.series
        assert restored.errors == figure.errors

    def test_json_omits_errors_key_for_single_trajectory_figures(self):
        # repetitions=1 output must stay byte-identical to the historical
        # format: no vestigial "errors" key.
        payload = figure_to_dict(_figure({"a": [0.01, 0.02]}))
        assert "errors" not in payload


class TestReplicatePlumbing:
    def test_fold_preserves_per_seed_figures(self):
        figures = [_figure({"a": [0.1, 0.3]}), _figure({"a": [0.3, 0.5]})]
        folded = fold_experiment_results([_result(figure=f) for f in figures])
        assert len(folded.replicates) == 2
        assert folded.replicates[0].series == {"a": [0.1, 0.3]}
        assert folded.replicates[1].series == {"a": [0.3, 0.5]}

    def test_json_round_trip_preserves_replicates(self):
        figures = [_figure({"a": [0.1, 0.3]}), _figure({"a": [0.3, 0.5]})]
        folded = fold_experiment_results([_result(figure=f) for f in figures])
        payload = json.loads(json.dumps(result_to_dict(folded)))
        restored = result_from_dict(payload)
        assert len(restored.replicates) == 2
        assert restored.replicates[1].series == {"a": [0.3, 0.5]}
        assert restored.figure.series == folded.figure.series

    def test_json_omits_replicates_key_for_single_trajectory_results(self):
        # Like "errors": the key only appears when repetitions > 1, keeping
        # single-trajectory JSON byte-identical to the historical format.
        payload = result_to_dict(_result(figure=_figure({"a": [0.1, 0.2]})))
        assert "replicates" not in payload
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored.replicates == []
