"""Tests for the paper-vs-measured reproduction report."""

import pytest

from repro.analysis import (
    PAPER_EXPECTATIONS,
    FigureSeries,
    ReproductionReport,
    summarise_overhead_figure,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult


def _figure_result() -> ExperimentResult:
    figure = FigureSeries(name="Figure 7", description="overhead",
                          categories=["case1", "case2"])
    figure.add_series("XOR-BTB-8M", [0.001, -0.002])
    return ExperimentResult(name="Figure 7", description="overhead",
                            figure=figure)


def _table_result() -> ExperimentResult:
    return ExperimentResult(name="Table 5", description="cost",
                            headers=["structure", "area"],
                            rows=[["BTB", "0.15%"], ["PHT", "0.09%"]])


class TestPaperExpectations:
    def test_every_paper_artefact_is_listed(self):
        expected = {"figure1", "figure2", "figure3", "figure7", "figure8",
                    "figure9", "figure10", "table1", "table2", "table3",
                    "table4", "table5", "poc_attacks"}
        assert expected <= set(PAPER_EXPECTATIONS)

    def test_expectations_reference_real_experiments(self):
        for key in PAPER_EXPECTATIONS:
            assert key in EXPERIMENTS

    def test_expectations_have_claims_and_shapes(self):
        for expectation in PAPER_EXPECTATIONS.values():
            assert expectation.claim
            assert expectation.shape
            assert expectation.artefact


class TestSummaries:
    def test_overhead_summary_lists_each_series(self):
        summary = summarise_overhead_figure(_figure_result())
        assert "XOR-BTB-8M" in summary
        assert "%" in summary

    def test_summary_without_figure(self):
        assert summarise_overhead_figure(_table_result()) == "(no figure data)"


class TestReproductionReport:
    def test_add_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            ReproductionReport().add("figure99", "whatever")

    def test_add_result_uses_figure_summary(self):
        report = ReproductionReport()
        entry = report.add_result("figure7", _figure_result(), matches=True)
        assert "XOR-BTB-8M" in entry.measured
        assert entry.matches is True

    def test_add_result_table_fallback(self):
        report = ReproductionReport()
        entry = report.add_result("table5", _table_result())
        assert "2 rows" in entry.measured

    def test_coverage_fraction(self):
        report = ReproductionReport()
        report.add_result("figure7", _figure_result())
        report.add_result("table5", _table_result())
        assert report.coverage(["figure7", "table5", "figure8", "figure9"]) == 0.5
        assert 0.0 < report.coverage() < 1.0

    def test_markdown_contains_all_entries(self):
        report = ReproductionReport(title="My run")
        report.add_result("figure7", _figure_result(), matches=True)
        report.add_result("table5", _table_result(), matches=False,
                          notes="analytic model only")
        markdown = report.to_markdown()
        assert markdown.startswith("# My run")
        assert "Figure 7" in markdown
        assert "Table 5" in markdown
        assert "**no**" in markdown
        assert "analytic model only" in markdown

    def test_markdown_without_matches_marks_dash(self):
        report = ReproductionReport()
        report.add_result("figure7", _figure_result())
        assert "| — |" in report.to_markdown()

    def test_save_writes_markdown(self, tmp_path):
        report = ReproductionReport()
        report.add_result("figure7", _figure_result())
        path = str(tmp_path / "report.md")
        assert report.save(path) == path
        with open(path, "r", encoding="utf-8") as handle:
            assert "Figure 7" in handle.read()

    def test_empty_result_summarised_as_zero_rows(self):
        empty = ExperimentResult(name="Figure 8", description="empty")
        entry = ReproductionReport().add_result("figure8", empty)
        assert entry.measured == "0 rows reproduced"

    def test_custom_summariser_wins(self):
        report = ReproductionReport()
        entry = report.add_result("figure7", _figure_result(),
                                  summariser=lambda result: "custom view")
        assert entry.measured == "custom view"

    def test_coverage_with_no_expected_artefacts_is_total(self):
        assert ReproductionReport().coverage([]) == 1.0
