"""Tests for the security/overhead/hw-cost Pareto layer."""

import math

import pytest

from repro.analysis.figures import FigureSeries
from repro.analysis.pareto import (
    DEFAULT_MECHANISMS,
    hw_cost_overheads,
    mechanism_overhead,
    mechanism_profiles,
    pareto_frontier,
    pareto_table,
)
from repro.experiments.base import ExperimentResult
from repro.hwcost.estimator import btb_cost, tage_pht_cost


def _figure_result(series, name="Fig", categories=("c1", "c2")):
    figure = FigureSeries(name=name, description="d",
                          categories=list(categories))
    for label, values in series.items():
        figure.add_series(label, values)
    return ExperimentResult(name=name, description="d", figure=figure)


class TestMechanismOverhead:
    def test_baseline_is_zero_by_definition(self):
        assert mechanism_overhead({}, "baseline") == (0.0, "(definition)")

    def test_figure10_suffix_labels_are_preferred(self):
        # Figure 10 prepends the predictor: gshare-CF, ltage-CF, ...
        results = {
            "figure10": _figure_result({"gshare-CF": [0.04, 0.06],
                                        "ltage-CF": [0.02, 0.04],
                                        "gshare-PF": [0.01, 0.01]}),
            "figure3": _figure_result({"Complete Flush": [0.9, 0.9]}),
        }
        overhead, source = mechanism_overhead(results, "complete_flush")
        # mean of series averages: (0.05 + 0.03) / 2
        assert overhead == pytest.approx(0.04)
        assert source == "figure10: CF (2 series)"

    def test_falls_back_to_exact_label_sources(self):
        results = {"figure3": _figure_result({"Complete Flush": [0.02, 0.04],
                                              "Precise Flush": [0.01, 0.01]})}
        overhead, source = mechanism_overhead(results, "complete_flush")
        assert overhead == pytest.approx(0.03)
        assert source == "figure3: Complete Flush (1 series)"

    def test_interval_suffixed_labels_match_by_prefix(self):
        results = {"figure9": _figure_result({"Noisy-XOR-BP-64K": [0.02, 0.02],
                                              "XOR-BP-64K": [0.01, 0.01]})}
        overhead, source = mechanism_overhead(results, "noisy_xor_bp")
        assert overhead == pytest.approx(0.02)
        assert source == "figure9: Noisy-XOR-BP (1 series)"

    def test_unavailable_when_no_covering_figure(self):
        results = {"figure1": _figure_result({"Complete Flush": [0.1, 0.1]})}
        assert mechanism_overhead(results, "noisy_xor_bp") == (
            None, "(unavailable)")


class TestHwCostOverheads:
    def test_flush_mechanisms_are_free(self):
        assert hw_cost_overheads("baseline") == (0.0, 0.0)
        assert hw_cost_overheads("complete_flush") == (0.0, 0.0)
        assert hw_cost_overheads("precise_flush") == (0.0, 0.0)

    def test_noisy_xor_bp_combines_btb_and_pht(self):
        area, timing = hw_cost_overheads("noisy_xor_bp")
        btb, pht = btb_cost(256), tage_pht_cost(2048)
        expected_area = ((btb.added_area_um2 + pht.added_area_um2)
                         / (btb.base_area_um2 + pht.base_area_um2))
        expected_timing = ((btb.added_delay_ps + pht.added_delay_ps)
                           / (btb.base_delay_ps + pht.base_delay_ps))
        assert area == pytest.approx(expected_area)
        assert timing == pytest.approx(expected_timing)
        assert 0.0 < area < 0.1
        assert 0.0 < timing < 0.1

    def test_single_structure_variants(self):
        btb_only = hw_cost_overheads("noisy_xor_btb")
        pht_only = hw_cost_overheads("noisy_xor_pht")
        assert btb_only[0] > 0.0
        assert pht_only[0] > 0.0
        assert btb_only != pht_only


class TestParetoFrontier:
    def test_dominated_point_is_dropped(self):
        assert pareto_frontier([(0.0, 0.0), (1.0, 1.0)]) == [0]

    def test_trade_off_points_all_survive(self):
        # Each is best on one axis; the third is dominated by both.
        assert pareto_frontier([(0.0, 1.0), (1.0, 0.0), (2.0, 2.0)]) == [0, 1]

    def test_identical_points_are_all_kept(self):
        assert pareto_frontier([(1.0, 1.0), (1.0, 1.0)]) == [0, 1]

    def test_three_axes(self):
        points = [(0.0, 5.0, 1.0), (0.0, 5.0, 0.5), (1.0, 0.0, 0.0)]
        assert pareto_frontier(points) == [1, 2]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestMechanismProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        results = {
            "figure10": _figure_result({
                f"{predictor}-{suffix}": [0.05, 0.03]
                for predictor in ("gshare", "ltage")
                for suffix in ("CF", "PF", "Noisy-XOR-BP")}),
        }
        return mechanism_profiles(results, trials=40, n_boot=30, seed=11)

    def test_profiles_follow_mechanism_order(self, profiles):
        assert [p.mechanism for p in profiles] == [
            preset for preset, _ in DEFAULT_MECHANISMS]

    def test_deterministic_given_the_seed(self, profiles):
        results = {
            "figure10": _figure_result({
                f"{predictor}-{suffix}": [0.05, 0.03]
                for predictor in ("gshare", "ltage")
                for suffix in ("CF", "PF", "Noisy-XOR-BP")}),
        }
        again = mechanism_profiles(results, trials=40, n_boot=30, seed=11)
        for first, second in zip(profiles, again):
            assert first == second

    def test_axes_are_populated(self, profiles):
        by_name = {p.mechanism: p for p in profiles}
        assert by_name["baseline"].overhead == 0.0
        assert by_name["baseline"].hw_area_overhead == 0.0
        assert by_name["complete_flush"].overhead == pytest.approx(0.04)
        assert by_name["noisy_xor_bp"].hw_area_overhead > 0.0
        for profile in profiles:
            low, high = profile.leakage_ci
            assert 0.0 <= low <= high
            assert profile.leakage_bits >= 0.0

    def test_frontier_is_marked_and_nonempty(self, profiles):
        assert any(p.on_frontier for p in profiles)
        points = [(p.leakage_bits,
                   p.overhead if p.overhead is not None else math.inf,
                   p.hw_area_overhead) for p in profiles]
        expected = set(pareto_frontier(points))
        assert {i for i, p in enumerate(profiles) if p.on_frontier} == expected

    def test_table_rendering(self, profiles):
        headers, rows = pareto_table(profiles)
        assert len(headers) == 8
        assert len(rows) == len(profiles)
        for row, profile in zip(rows, profiles):
            assert len(row) == len(headers)
            assert row[0] == profile.label
            assert row[-1] == ("yes" if profile.on_frontier else "no")

    def test_unavailable_overhead_renders_na(self):
        profiles = mechanism_profiles({}, trials=20, n_boot=10, seed=3)
        _, rows = pareto_table(profiles)
        by_label = {row[0]: row for row in rows}
        assert by_label["Complete Flush"][3] == "n/a"
        assert by_label["Complete Flush"][4] == "(unavailable)"
        assert by_label["Baseline"][3] == "+0.00%"
