"""Tests for the reporting helpers (metrics, tables, figures)."""

import math

import pytest

from repro.analysis import (
    FigureSeries,
    arithmetic_mean,
    geometric_mean,
    mpki,
    normalise,
    percent,
    relative_overhead,
    render_csv,
    render_table,
)


class TestMetrics:
    def test_relative_overhead(self):
        assert relative_overhead(110, 100) == pytest.approx(0.10)
        assert relative_overhead(90, 100) == pytest.approx(-0.10)
        assert relative_overhead(1, 0) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_percent(self):
        assert percent(0.0123) == "+1.23%"
        assert percent(-0.5, digits=1) == "-50.0%"

    def test_mpki(self):
        assert mpki(10, 1000) == 10.0
        assert mpki(10, 0) == 0.0

    def test_normalise(self):
        assert normalise([2, 4], 2) == [1.0, 2.0]
        assert normalise([2, 4], 0) == [1.0, 1.0]


class TestTables:
    def test_render_table_aligns_columns(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title + header + rule + rows

    def test_render_csv(self):
        text = render_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]


class TestFigureSeries:
    def _figure(self):
        figure = FigureSeries("Fig", "demo", ["case1", "case2"])
        figure.add_series("m1", [0.01, 0.03])
        figure.add_series("m2", [0.02, 0.02])
        return figure

    def test_add_series_validates_length(self):
        figure = FigureSeries("Fig", "demo", ["case1", "case2"])
        with pytest.raises(ValueError):
            figure.add_series("bad", [0.01])

    def test_averages(self):
        figure = self._figure()
        assert figure.average("m1") == pytest.approx(0.02)
        assert figure.averages()["m2"] == pytest.approx(0.02)

    def test_rows_include_average_row(self):
        rows = self._figure().to_rows()
        assert rows[-1][0] == "average"
        assert len(rows) == 3

    def test_render_formats_percentages(self):
        text = self._figure().render()
        assert "+1.00%" in text and "case1" in text

    def test_csv_export(self):
        text = self._figure().to_csv()
        assert text.splitlines()[0] == "case,m1,m2"
