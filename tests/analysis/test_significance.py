"""Tests for the paired significance layer.

Every closed-form path is pinned against hand-computed textbook values (the
t statistic and p-value of a worked example, the Wilcoxon rank arithmetic,
the Holm step-down), and every stochastic path (bootstraps) is pinned for
determinism: the same seed must reproduce the interval exactly.
"""

import math

import pytest

from repro.analysis.figures import FigureSeries
from repro.analysis.significance import (
    PairwiseComparison,
    bootstrap_ci,
    compare_paired,
    holm_adjust,
    jarque_bera,
    leakage_mi_ci,
    looks_normal,
    normal_sf,
    paired_t,
    significance_matrix,
    student_t_sf,
    suffix_groups,
    t_p_value_two_sided,
    wilcoxon_signed_rank,
)
from repro.analysis.significance import TestResult as SigTestResult
from repro.experiments.base import ExperimentResult


class TestDistributionFunctions:
    def test_t_sf_is_half_at_zero(self):
        assert student_t_sf(0.0, 5) == pytest.approx(0.5)

    def test_t_sf_symmetry(self):
        assert student_t_sf(1.7, 9) == pytest.approx(
            1.0 - student_t_sf(-1.7, 9))

    def test_two_sided_p_matches_the_critical_value(self):
        # t=2.776 is the textbook 97.5th percentile for df=4, so the
        # two-sided p-value there is 0.05 by construction.
        assert t_p_value_two_sided(2.776, 4) == pytest.approx(0.05, abs=1e-4)

    def test_normal_sf_textbook_values(self):
        assert normal_sf(0.0) == pytest.approx(0.5)
        assert normal_sf(1.959964) == pytest.approx(0.025, abs=1e-6)

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError):
            t_p_value_two_sided(1.0, 0)


class TestPairedT:
    def test_worked_example(self):
        # diffs = [1..5]: mean 3, sd sqrt(2.5), t = 3/sqrt(2.5/5) = 4.2426;
        # two-sided p with df=4 is 0.01324 (hand-checked against tables).
        result = paired_t([1, 2, 3, 4, 5], [0, 0, 0, 0, 0])
        assert result.method == "paired-t"
        assert result.statistic == pytest.approx(3.0 * math.sqrt(2.0))
        assert result.p_value == pytest.approx(0.01324, abs=1e-4)
        assert result.n == 5
        assert result.significant()

    def test_identical_samples_report_no_evidence(self):
        result = paired_t([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.statistic == 0.0
        assert result.p_value == 1.0
        assert not result.significant()

    def test_constant_nonzero_shift_is_certain(self):
        result = paired_t([2.0, 3.0, 4.0], [1.0, 2.0, 3.0])
        assert result.statistic == math.inf
        assert result.p_value == 0.0

    def test_length_mismatch_and_tiny_samples_rejected(self):
        with pytest.raises(ValueError):
            paired_t([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_t([1.0], [2.0])


class TestWilcoxon:
    def test_worked_example(self):
        # diffs = [1, -2, 3, -4, 5]: abs ranks 1..5, W+ = 1+3+5 = 9,
        # mean 7.5, variance 13.75, continuity-corrected
        # z = (9 - 7.5 - 0.5)/sqrt(13.75) = 0.26968.
        result = wilcoxon_signed_rank([1, -2, 3, -4, 5], [0, 0, 0, 0, 0])
        assert result.method == "wilcoxon"
        assert result.statistic == pytest.approx(1.0 / math.sqrt(13.75))
        assert result.p_value == pytest.approx(
            2.0 * normal_sf(1.0 / math.sqrt(13.75)))
        assert result.n == 5

    def test_zero_differences_are_dropped(self):
        result = wilcoxon_signed_rank([1.0, 2.0, 3.0, 4.0],
                                      [1.0, 2.0, 3.0, 0.0])
        assert result.n == 1

    def test_all_zero_differences_report_no_evidence(self):
        result = wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
        assert result.p_value == 1.0
        assert result.n == 0

    def test_sign_symmetry(self):
        forward = wilcoxon_signed_rank([5, 1, 4, 2, 6], [0, 0, 0, 0, 0])
        reverse = wilcoxon_signed_rank([0, 0, 0, 0, 0], [5, 1, 4, 2, 6])
        assert forward.p_value == pytest.approx(reverse.p_value)
        assert forward.statistic == pytest.approx(-reverse.statistic)


class TestNormalityScreen:
    def test_small_samples_always_look_normal(self):
        assert looks_normal([0.0, 100.0, 0.0])

    def test_symmetric_sample_passes(self):
        values = [-2.0, -1.0, -0.5, 0.0, 0.0, 0.5, 1.0, 2.0]
        assert jarque_bera(values) <= 5.991
        assert looks_normal(values)

    def test_extreme_outlier_fails(self):
        values = [0.0] * 11 + [100.0]
        assert jarque_bera(values) > 5.991
        assert not looks_normal(values)

    def test_compare_paired_switches_on_the_screen(self):
        normalish = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        zeros = [0.0] * 8
        assert compare_paired(normalish, zeros).method == "paired-t"
        skewed = [0.1, 0.2, 0.1, 0.2, 0.1, 0.2, 0.1, 100.0]
        assert compare_paired(skewed, zeros).method == "wilcoxon"


class TestHolm:
    def test_worked_example(self):
        # Sorted: 0.01*3=0.03; 0.03*2=0.06; 0.04*1=0.04 -> monotone 0.06.
        assert holm_adjust([0.01, 0.04, 0.03]) == pytest.approx(
            [0.03, 0.06, 0.06])

    def test_adjusted_values_capped_at_one(self):
        assert holm_adjust([0.5, 0.9]) == pytest.approx([1.0, 1.0])

    def test_empty_and_single(self):
        assert holm_adjust([]) == []
        assert holm_adjust([0.02]) == [0.02]


class _FakeEstimate:
    def __init__(self, joint_counts, trials):
        self.joint_counts = joint_counts
        self.trials = trials


class TestBootstrap:
    def test_same_seed_reproduces_the_interval(self):
        sample = [0.1, 0.4, 0.2, 0.9, 0.3]
        first = bootstrap_ci(sample, seed=7, n_boot=300)
        second = bootstrap_ci(sample, seed=7, n_boot=300)
        assert first == second

    def test_interval_brackets_a_constant_sample_exactly(self):
        assert bootstrap_ci([2.5, 2.5, 2.5], n_boot=50) == (2.5, 2.5)

    def test_interval_is_ordered_and_within_range(self):
        low, high = bootstrap_ci([1.0, 2.0, 3.0, 4.0], seed=1, n_boot=200)
        assert 1.0 <= low <= high <= 4.0

    def test_custom_statistic(self):
        low, high = bootstrap_ci([1.0, 5.0, 9.0], seed=3, n_boot=100,
                                 statistic=max)
        assert high == 9.0
        assert low >= 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_leakage_mi_ci_deterministic_and_nonnegative(self):
        estimate = _FakeEstimate([[40, 10], [12, 38]], 100)
        first = leakage_mi_ci(estimate, seed=5, n_boot=100)
        second = leakage_mi_ci(estimate, seed=5, n_boot=100)
        assert first == second
        assert 0.0 <= first[0] <= first[1] <= 1.0

    def test_leakage_mi_ci_empty_counts(self):
        assert leakage_mi_ci(_FakeEstimate([[0, 0], [0, 0]], 0)) == (0.0, 0.0)


class TestSuffixGroups:
    def test_figure10_style_grid(self):
        labels = ["gshare-CF", "gshare-PF", "ltage-CF", "ltage-PF"]
        assert suffix_groups(labels) == {"CF": ["gshare-CF", "ltage-CF"],
                                         "PF": ["gshare-PF", "ltage-PF"]}

    def test_plain_labels_do_not_group(self):
        assert suffix_groups(["Complete Flush", "Precise Flush"]) is None

    def test_incomplete_grid_does_not_group(self):
        assert suffix_groups(["a-x", "a-y", "b-x"]) is None

    def test_single_suffix_does_not_group(self):
        assert suffix_groups(["a-x", "b-x"]) is None


def _replicated_result(series_sets, categories=("c1", "c2")):
    """Result whose folded figure + replicates carry the given series values."""
    replicates = []
    for series in series_sets:
        figure = FigureSeries(name="Fig S", description="sig test",
                              categories=list(categories))
        for label, values in series.items():
            figure.add_series(label, values)
        replicates.append(figure)
    return ExperimentResult(name="Fig S", description="sig test",
                            figure=replicates[0], replicates=replicates)


class TestSignificanceMatrix:
    def test_paired_coordinates_and_holm(self):
        # Two replicates, conditions a/b/c: a sits ~0.01 above b at every
        # paired coordinate (overwhelmingly significant) while c equals b
        # exactly (p = 1).
        reps = [{"a": [0.03, 0.05], "b": [0.02, 0.04], "c": [0.02, 0.04]},
                {"a": [0.04, 0.02], "b": [0.03, 0.01], "c": [0.03, 0.01]}]
        matrix = significance_matrix(_replicated_result(reps))
        assert matrix.conditions == ["a", "b", "c"]
        assert matrix.observations == 4
        assert matrix.repetitions == 2
        ab = matrix.comparison("a", "b")
        assert ab.mean_diff == pytest.approx(0.01)
        assert ab.test.p_value < 1e-6
        assert ab.significant()
        bc = matrix.comparison("c", "b")  # order-insensitive lookup
        assert bc.test.p_value == 1.0
        assert not bc.significant()
        assert bc.adjusted_p == 1.0

    def test_grouped_conditions_pool_member_series(self):
        reps = [{"gshare-CF": [0.05, 0.06], "ltage-CF": [0.04, 0.05],
                 "gshare-PF": [0.01, 0.02], "ltage-PF": [0.02, 0.01]}]
        matrix = significance_matrix(_replicated_result(reps))
        assert matrix.conditions == ["CF", "PF"]
        assert matrix.observations == 4  # 1 rep x 2 predictors x 2 cases
        assert matrix.comparison("CF", "PF").mean_a == pytest.approx(0.05)

    def test_single_replicate_falls_back_to_the_folded_figure(self):
        figure = FigureSeries(name="Fig S", description="d",
                              categories=["c1", "c2", "c3"])
        figure.add_series("a", [0.3, 0.2, 0.4])
        figure.add_series("b", [0.1, 0.1, 0.2])
        result = ExperimentResult(name="Fig S", description="d", figure=figure)
        matrix = significance_matrix(result)
        assert matrix.repetitions == 1
        assert matrix.observations == 3

    def test_no_figure_returns_none(self):
        result = ExperimentResult(name="T", description="d",
                                  headers=["k"], rows=[["v"]])
        assert significance_matrix(result) is None

    def test_single_condition_returns_none(self):
        figure = FigureSeries(name="F", description="d", categories=["c1", "c2"])
        figure.add_series("only", [0.1, 0.2])
        result = ExperimentResult(name="F", description="d", figure=figure)
        assert significance_matrix(result) is None

    def test_rows_and_headers_align(self):
        reps = [{"a": [0.2, 0.4], "b": [0.1, 0.3]},
                {"a": [0.3, 0.5], "b": [0.2, 0.2]}]
        matrix = significance_matrix(_replicated_result(reps))
        rows = matrix.rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(matrix.headers())
        assert rows[0][0] == "a vs b"
        assert rows[0][-1] in ("yes", "no")

    def test_explicit_groups_override_auto_grouping(self):
        reps = [{"a-x": [0.2, 0.3], "a-y": [0.1, 0.2],
                 "b-x": [0.4, 0.5], "b-y": [0.3, 0.4]}]
        matrix = significance_matrix(
            _replicated_result(reps),
            groups={"a": ["a-x", "a-y"], "b": ["b-x", "b-y"]})
        assert matrix.conditions == ["a", "b"]


class TestDataclasses:
    def test_test_result_significance_threshold(self):
        assert SigTestResult("paired-t", 3.0, 0.01, 5).significant()
        assert not SigTestResult("paired-t", 1.0, 0.2, 5).significant()

    def test_pairwise_comparison_uses_adjusted_p(self):
        raw = SigTestResult("paired-t", 3.0, 0.01, 5)
        cell = PairwiseComparison(a="a", b="b", mean_a=1.0, mean_b=0.5,
                                  mean_diff=0.5, test=raw, adjusted_p=0.2)
        assert not cell.significant()
