"""Tests for the declarative experiment-manifest layer.

Covers the planning protocol (every case-based driver's ``plan()`` is
non-empty and stable), cross-experiment dedupe, the deterministic shard
partitioning invariants (disjoint, covering, stable under experiment
reordering), and the strict ``i/n`` shard parsing.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.manifest import (
    ShardSpec,
    build_manifest,
    env_shard,
    experiment_registry,
    parse_shard,
)
from repro.experiments.scaling import ExperimentScale

#: Tiny scale: planning never simulates, so this only affects cache keys.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

#: Experiments that run their simulations through CaseSpecs.
CASE_BASED = ["figure1", "figure2", "figure3", "figure7", "figure8",
              "figure9", "figure10", "table4", "ablation_encoder",
              "ablation_key_refresh", "ablation_switch_interval",
              "ablation_penalty", "smt4_noisy_xor"]

#: Experiments with no executor cases (config tables, attack-based studies);
#: they are assigned whole to a shard instead.
CASELESS = ["table1", "table2", "table3", "table5", "poc_attacks",
            "ablation_pht_granularity"]


class TestRegistry:
    def test_registry_covers_every_experiment(self):
        assert set(experiment_registry()) == set(EXPERIMENTS)

    def test_case_based_and_caseless_partition_the_registry(self):
        assert set(CASE_BASED) | set(CASELESS) == set(experiment_registry())
        assert not set(CASE_BASED) & set(CASELESS)


class TestPlans:
    @pytest.mark.parametrize("key", CASE_BASED)
    def test_case_based_plans_are_non_empty(self, key):
        specs = experiment_registry()[key].plan(TINY)
        assert specs, f"{key}.plan() enumerated no cases"

    @pytest.mark.parametrize("key", CASELESS)
    def test_caseless_plans_are_empty(self, key):
        assert experiment_registry()[key].plan(TINY) == []

    @pytest.mark.parametrize("key", sorted(EXPERIMENTS))
    def test_plans_are_stable(self, key):
        # Two plan() calls must enumerate identical cases in identical order:
        # the shard executing a case and the merge assembling from it both
        # re-plan independently.
        definition = experiment_registry()[key]
        first = [spec.cache_key() for spec in definition.plan(TINY)]
        second = [spec.cache_key() for spec in definition.plan(TINY)]
        assert first == second

    def test_plans_depend_on_scale(self):
        definition = experiment_registry()["figure1"]
        other = ExperimentScale(seed=8)
        first = {spec.cache_key() for spec in definition.plan(TINY)}
        second = {spec.cache_key() for spec in definition.plan(other)}
        assert not first & second


class TestManifest:
    def test_cross_experiment_dedupe(self):
        # Figures 7, 8 and 9 share their per-pair baselines; the manifest
        # must plan each shared case once.
        manifest = build_manifest(["figure7", "figure8", "figure9"], TINY)
        assert manifest.total_planned() > len(manifest.unique_cases())

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="figure99"):
            build_manifest(["figure99"], TINY)

    def test_hash_is_stable_and_order_invariant(self):
        forward = build_manifest(["figure1", "figure8"], TINY)
        backward = build_manifest(["figure8", "figure1"], TINY)
        assert forward.manifest_hash() == backward.manifest_hash()
        assert forward.manifest_hash() == \
            build_manifest(["figure1", "figure8"], TINY).manifest_hash()

    def test_hash_depends_on_selection_and_scale(self):
        base = build_manifest(["figure1"], TINY)
        assert base.manifest_hash() != \
            build_manifest(["figure8"], TINY).manifest_hash()
        assert base.manifest_hash() != \
            build_manifest(["figure1"], ExperimentScale(seed=8)).manifest_hash()

    def test_describe_counts(self):
        manifest = build_manifest(["figure1", "table5"], TINY)
        summary = manifest.describe()
        assert summary["experiments"]["figure1"] > 0
        assert summary["experiments"]["table5"] == 0
        assert summary["caseless_experiments"] == ["table5"]
        assert summary["unique_cases"] <= summary["planned_cases"]


class TestSharding:
    def _manifest(self, keys=("figure1", "figure8", "table5", "poc_attacks")):
        return build_manifest(list(keys), TINY)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7])
    def test_shards_are_disjoint_and_covering(self, count):
        manifest = self._manifest()
        seen = []
        for index in range(count):
            seen.extend(manifest.shard_cases(ShardSpec(index, count)))
        assert sorted(seen) == sorted(manifest.unique_cases())
        assert len(seen) == len(set(seen))

    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_caseless_experiments_are_disjoint_and_covering(self, count):
        manifest = self._manifest()
        seen = []
        for index in range(count):
            seen.extend(manifest.shard_caseless(ShardSpec(index, count)))
        assert sorted(seen) == sorted(manifest.caseless_keys())

    def test_assignment_is_stable_under_experiment_reordering(self):
        # A case's shard is a pure function of its cache key: selecting more
        # experiments, or the same ones in another order, must not move it.
        small = build_manifest(["figure8"], TINY)
        large = build_manifest(["figure1", "figure7", "figure8"], TINY)
        reordered = build_manifest(["figure8", "figure7", "figure1"], TINY)
        shard = ShardSpec(1, 3)
        small_keys = set(small.shard_cases(shard))
        large_keys = set(large.shard_cases(shard))
        assert small_keys <= large_keys
        assert large_keys == set(reordered.shard_cases(shard))

    def test_shard_none_means_everything(self):
        manifest = self._manifest()
        assert manifest.shard_cases(None) == manifest.unique_cases()
        assert manifest.shard_caseless(None) == manifest.caseless_keys()


class TestShardParsing:
    def test_valid_shards(self):
        assert parse_shard("0/4") == ShardSpec(0, 4)
        assert parse_shard(" 3/4 ") == ShardSpec(3, 4)
        assert str(ShardSpec(2, 5)) == "2/5"

    @pytest.mark.parametrize("bad", ["3/2", "4/4", "0/0", "-1/2", "a/b",
                                     "1", "1/2/3", "", "1/ 2"])
    def test_malformed_shards_rejected(self, bad):
        with pytest.raises(ValueError, match="REPRO_SHARD"):
            parse_shard(bad)

    def test_env_shard(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD", raising=False)
        assert env_shard() is None
        monkeypatch.setenv("REPRO_SHARD", "1/2")
        assert env_shard() == ShardSpec(1, 2)
        monkeypatch.setenv("REPRO_SHARD", "3/2")
        with pytest.raises(ValueError, match="REPRO_SHARD"):
            env_shard()
