"""Tests for the parallel caching sweep executor."""

import dataclasses

import pytest

from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.experiments.executor import (
    CaseSpec,
    ExecutionError,
    RunResultCache,
    SweepExecutor,
    env_jobs,
)
from repro.experiments.runner import (
    overhead_figure_single_thread,
    sweep_single_thread,
    sweep_smt,
)
from repro.experiments.scaling import ExperimentScale
from repro.workloads import SINGLE_THREAD_PAIRS, SMT2_PAIRS

#: Deliberately tiny budgets: these tests exercise plumbing, not physics.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

CONFIG = fpga_prototype("gshare", n_entries=2048)
SMT_CONFIG = sunny_cove_smt("gshare", n_entries=2048)


def _spec(preset="baseline", **overrides):
    defaults = dict(kind="single", pair=SINGLE_THREAD_PAIRS[0], config=CONFIG,
                    preset=preset, scale=TINY)
    defaults.update(overrides)
    return CaseSpec(**defaults)


class TestCacheKey:
    def test_identical_specs_share_a_key(self):
        assert _spec().cache_key() == _spec().cache_key()

    def test_preset_changes_the_key(self):
        assert _spec().cache_key() != _spec(preset="complete_flush").cache_key()

    def test_scale_changes_the_key(self):
        other = dataclasses.replace(TINY, st_target_branches=2_000)
        assert _spec().cache_key() != _spec(scale=other).cache_key()

    def test_switch_interval_changes_the_key(self):
        assert _spec().cache_key() != _spec(switch_interval=4_000_000).cache_key()

    def test_label_is_not_part_of_the_key(self):
        assert _spec(label="a").cache_key() == _spec(label="b").cache_key()

    def test_engine_version_changes_the_key(self, monkeypatch):
        # An engine-version bump must invalidate every cached entry: stale
        # results from an older kernel generation may differ bit-for-bit.
        before = _spec().cache_key()
        monkeypatch.setattr("repro.experiments.executor.ENGINE_VERSION",
                            "0000.0-test-bump")
        assert _spec().cache_key() != before

    def test_engine_version_bump_misses_disk_cache(self, tmp_path, monkeypatch):
        # Populate a disk cache under the current engine version, then bump
        # the version: the same spec must re-simulate (disk entry unused).
        cache = RunResultCache(directory=str(tmp_path))
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_spec(_spec())
        assert executor.simulated == 1

        monkeypatch.setattr("repro.experiments.executor.ENGINE_VERSION",
                            "0000.0-test-bump")
        fresh = SweepExecutor(jobs=1,
                              cache=RunResultCache(directory=str(tmp_path)))
        fresh.run_spec(_spec())
        assert fresh.simulated == 1  # disk entry from the old engine ignored

        # Under the old version the entry would still have been a hit.
        monkeypatch.undo()
        rerun = SweepExecutor(jobs=1,
                              cache=RunResultCache(directory=str(tmp_path)))
        rerun.run_spec(_spec())
        assert rerun.simulated == 0


class TestRunResultCache:
    def test_memory_roundtrip(self):
        cache = RunResultCache(directory=None)
        executor = SweepExecutor(jobs=1, cache=cache)
        result = executor.run_spec(_spec())
        assert cache.get(_spec().cache_key()).cycles == result.cycles

    def test_disk_roundtrip(self, tmp_path):
        cache = RunResultCache(directory=str(tmp_path))
        executor = SweepExecutor(jobs=1, cache=cache)
        result = executor.run_spec(_spec())
        # A fresh cache instance (new process, conceptually) reads the file.
        fresh = RunResultCache(directory=str(tmp_path))
        restored = fresh.get(_spec().cache_key())
        assert restored is not None
        assert restored.cycles == result.cycles
        assert restored.threads.keys() == result.threads.keys()
        for name, stats in result.threads.items():
            assert restored.threads[name].branches == stats.branches

    def test_env_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = RunResultCache()
        assert cache.directory == str(tmp_path)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = RunResultCache(directory=str(tmp_path))
        key = _spec().cache_key()
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None


class TestSweepExecutor:
    def test_duplicate_specs_simulate_once(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        results = executor.run_specs([_spec(), _spec(), _spec()])
        assert executor.simulated == 1
        assert results[0] is results[1] is results[2]

    def test_results_keep_submission_order(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        specs = [_spec(preset="baseline"), _spec(preset="complete_flush"),
                 _spec(preset="baseline")]
        results = executor.run_specs(specs)
        assert results[0].mechanism == "baseline"
        assert results[1].mechanism == "complete_flush"
        assert results[2] is results[0]

    def test_parallel_results_match_serial(self):
        serial = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        parallel = SweepExecutor(jobs=2, cache=RunResultCache(directory=None))
        specs = [_spec(preset="baseline"), _spec(preset="complete_flush")]
        expected = serial.run_specs(specs)
        observed = parallel.run_specs([_spec(preset="baseline"),
                                       _spec(preset="complete_flush")])
        assert [r.cycles for r in observed] == [r.cycles for r in expected]
        assert [r.mechanism for r in observed] == [r.mechanism for r in expected]

    def test_env_jobs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert env_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert env_jobs() == 4

    @pytest.mark.parametrize("bad", ["banana", "0", "-2", "1.5", ""])
    def test_env_jobs_rejects_malformed_values(self, bad, monkeypatch):
        # A typo'd REPRO_JOBS used to silently run serially (or crash deep in
        # the pool setup); now it fails at parse time, naming the variable.
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            env_jobs()

    def test_replay_only_executor_rejects_uncached_cases(self):
        cache = RunResultCache(directory=None)
        warm = SweepExecutor(jobs=1, cache=cache)
        warm.run_spec(_spec())
        replay = SweepExecutor(jobs=1, cache=cache, allow_simulation=False)
        # The cached case replays fine; an uncached one must fail loudly.
        assert replay.run_spec(_spec()).mechanism == "baseline"
        assert replay.simulated == 0
        with pytest.raises(RuntimeError, match="replay-only"):
            replay.run_spec(_spec(preset="complete_flush"))

    def test_unknown_kind_rejected(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        # A deterministic misconfiguration is not retried (no backoff burn)
        # and surfaces as a structured ExecutionError after one attempt.
        with pytest.raises(ExecutionError, match="unknown case kind"):
            executor.run_spec(_spec(kind="gpu"))
        assert len(executor.failures) == 1
        assert executor.failures[0].attempts == 1
        assert executor.failures[0].error == "ValueError"


class TestSweepIntegration:
    def test_single_thread_sweep_runs_baseline_once_per_pair(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        pairs = SINGLE_THREAD_PAIRS[:2]
        results = sweep_single_thread(pairs, CONFIG,
                                      ["baseline", "complete_flush"],
                                      TINY, executor=executor)
        # 2 pairs x (baseline + complete_flush) = 4 simulations, no dupes.
        assert executor.simulated == 4
        assert set(results) == {(p.case, preset) for p in pairs
                                for preset in ("baseline", "complete_flush")}

    def test_smt_sweep_dedupes_baseline(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        pair = SMT2_PAIRS[0]
        sweep_smt([pair], SMT_CONFIG, ["baseline", "complete_flush"], TINY,
                  executor=executor)
        simulated_after_first = executor.simulated
        assert simulated_after_first == 2
        # A second sweep naming baseline again must not re-simulate it.
        sweep_smt([pair], SMT_CONFIG, ["baseline"], TINY, executor=executor)
        assert executor.simulated == simulated_after_first

    def test_figure_driver_shares_baselines_with_sweeps(self):
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=None))
        pairs = SINGLE_THREAD_PAIRS[:2]
        sweep_single_thread(pairs, CONFIG, ["baseline"], TINY,
                            executor=executor)
        baseline_runs = executor.simulated
        figure, baselines = overhead_figure_single_thread(
            "fig", "test figure", [("CF", "complete_flush", None)], list(pairs),
            config=CONFIG, scale=TINY, executor=executor)
        # Only the complete_flush series is new; baselines come from cache.
        assert executor.simulated == baseline_runs + len(pairs)
        assert set(baselines) == {p.case for p in pairs}
        assert "CF" in figure.series

    def test_parallel_sweep_matches_serial(self):
        pairs = SINGLE_THREAD_PAIRS[:2]
        serial = sweep_single_thread(
            pairs, CONFIG, ["baseline"], TINY,
            executor=SweepExecutor(jobs=1, cache=RunResultCache(directory=None)))
        parallel = sweep_single_thread(
            pairs, CONFIG, ["baseline"], TINY,
            executor=SweepExecutor(jobs=2, cache=RunResultCache(directory=None)))
        assert {k: v.cycles for k, v in serial.items()} \
            == {k: v.cycles for k, v in parallel.items()}
