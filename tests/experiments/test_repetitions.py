"""Tests for repetition-aware planning, aggregation and store exchange.

Pins the four repetition invariants:

* **expansion** — a ``repetitions=N`` manifest plans exactly the N-seed
  family of every base case (repetition 0 *is* the base case, so single-seed
  results are reused), and the manifest hash separates repetition counts
  (pinned-hash regression: ``repetitions=1`` and ``repetitions=N`` cache
  keys can never silently collide);
* **bit-identity at N=1** — the repetition machinery is a pass-through for
  single-trajectory manifests (the golden-trace suite already pins the
  output; here we pin that the manifest itself is unchanged);
* **aggregation determinism** — serial, sharded-and-merged, and
  store-exchanged executions of the same ``repetitions=N`` manifest produce
  byte-identical aggregated output, invariant to shard/artifact/ingest
  order;
* **strict parsing** — malformed repetition counts fail loudly, naming the
  setting.
"""

import json

import pytest

from repro.analysis.export import result_to_dict
from repro.cpu.config import fpga_prototype
from repro.experiments import fig1_flush_single
from repro.experiments.executor import (
    CaseSpec,
    RepetitionExecutor,
    RunResultCache,
    SweepExecutor,
)
from repro.experiments.manifest import (
    ExperimentDef,
    ShardSpec,
    build_manifest,
    parse_repetitions,
)
from repro.experiments.pipeline import (
    execute_shard,
    merge_artifacts,
    run_serial,
    shard_artifact_path,
)
from repro.experiments.scaling import ExperimentScale
from repro.experiments.store import ResultStore
from repro.workloads.pairs import SINGLE_THREAD_PAIRS

#: Fixed scale for the pinned hashes and the identity checks (never from
#: REPRO_SCALE — pins must not depend on the environment).
PINNED_SCALE = ExperimentScale(
    time_scale=200.0, smt_time_scale=600.0, syscall_time_scale=25.0,
    st_target_branches=2_000, st_warmup_branches=500,
    smt_instructions=20_000, smt_warmup_instructions=5_000, seed=2021)

#: Small but real simulation budget for the byte-identity proofs.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

PAIRS = SINGLE_THREAD_PAIRS[:2]

#: Synthetic two-case plan: keeps the pinned hashes independent of the
#: figure drivers' planning details (they may legitimately evolve), while
#: still covering everything the hash folds in — engine version, scale,
#: selection, repetitions and the expanded case set.
PINNED_REGISTRY = {
    "pinned": ExperimentDef(
        "pinned",
        plan=lambda scale: [
            CaseSpec("single", PAIRS[0], fpga_prototype(), "baseline", scale),
            CaseSpec("single", PAIRS[0], fpga_prototype(), "complete_flush",
                     scale),
        ],
        assemble=lambda scale, executor: None),
}

#: Regression pins for the manifest hash (engine 2026.3-packed-btb).  These
#: change whenever ENGINE_VERSION, the CaseSpec key payload or the manifest
#: hash payload changes **intentionally** — update them in that commit.  What
#: they guarantee: a repetitions=1 and a repetitions=3 manifest of the same
#: plan can never silently collide onto one CI cache/store key.
PINNED_HASH_R1 = \
    "079bfe09bba927fecfd8ea9ee46a66723f628611b8616145beb6ae2c41343f80"
PINNED_HASH_R3 = \
    "3608587720a6929110a3ee632e8c07c8ef3518db31b8824dcff8f6f8daae178a"


def _figure1_registry(pairs=PAIRS):
    return {"figure1": ExperimentDef(
        "figure1",
        plan=lambda scale: fig1_flush_single.plan(scale, pairs=pairs),
        assemble=lambda scale, executor: fig1_flush_single.run(
            scale, pairs=pairs, executor=executor))}


def _result_bytes(results):
    return json.dumps({key: result_to_dict(result)
                       for key, result in results.items()}, sort_keys=True)


class TestExpansion:
    def test_unique_cases_expand_by_repetitions(self):
        base = build_manifest(scale=TINY, experiments=_figure1_registry())
        reps = build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=3)
        assert len(reps.unique_cases()) == 3 * len(base.unique_cases())
        assert reps.total_planned() == 3 * base.total_planned()

    def test_repetition_zero_reuses_single_seed_cache_keys(self):
        # An N-seed run shares repetition 0 with a single-seed run, so the
        # store/cache entries of a plain run seed an averaged rerun.
        base = build_manifest(scale=TINY, experiments=_figure1_registry())
        reps = build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=3)
        assert set(base.unique_cases()) <= set(reps.unique_cases())

    def test_expanded_cases_differ_only_in_seed_offset(self):
        reps = build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=2)
        offsets = sorted({spec.seed_offset
                          for spec in reps.unique_cases().values()})
        assert offsets == [0, 1]

    def test_shards_partition_the_expanded_family(self):
        reps = build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=3)
        seen = []
        for index in range(3):
            seen.extend(reps.shard_cases(ShardSpec(index, 3)))
        assert sorted(seen) == sorted(reps.unique_cases())

    def test_duplicate_experiment_keys_are_deduped(self):
        # `--experiments figure1 figure1` must plan and hash exactly like
        # the single selection (else the CI store cache key would roll and
        # merges against deduped artifacts would fail the hash check).
        single = build_manifest(["figure1"], TINY,
                                experiments=_figure1_registry())
        doubled = build_manifest(["figure1", "figure1"], TINY,
                                 experiments=_figure1_registry())
        assert doubled.keys == ["figure1"]
        assert doubled.manifest_hash() == single.manifest_hash()
        assert doubled.total_planned() == single.total_planned()

    def test_describe_reports_repetitions(self):
        reps = build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=3)
        summary = reps.describe()
        assert summary["repetitions"] == 3
        assert summary["planned_cases"] == reps.total_planned()


class TestPinnedHash:
    def test_repetition_counts_never_collide(self):
        one = build_manifest(scale=PINNED_SCALE, experiments=PINNED_REGISTRY)
        three = build_manifest(scale=PINNED_SCALE, experiments=PINNED_REGISTRY,
                               repetitions=3)
        assert one.manifest_hash() == PINNED_HASH_R1, (
            "repetitions=1 manifest hash drifted; if the change to the hash "
            "payload/engine is intentional, update PINNED_HASH_R1")
        assert three.manifest_hash() == PINNED_HASH_R3, (
            "repetitions=3 manifest hash drifted; if the change to the hash "
            "payload/engine is intentional, update PINNED_HASH_R3")
        assert one.manifest_hash() != three.manifest_hash()

    def test_hash_depends_on_repetitions_beyond_the_case_set(self):
        # Belt and braces: a caseless-only manifest expands to the same
        # (empty) case set at every repetition count, so only the explicit
        # "repetitions" field of the hash payload separates these.
        caseless = {"caseless": ExperimentDef(
            "caseless", plan=lambda scale: [],
            assemble=lambda scale, executor: None)}
        one = build_manifest(scale=PINNED_SCALE, experiments=caseless)
        three = build_manifest(scale=PINNED_SCALE, experiments=caseless,
                               repetitions=3)
        assert one.unique_cases() == three.unique_cases() == {}
        assert one.manifest_hash() != three.manifest_hash()


class TestParsing:
    @pytest.mark.parametrize("bad", ["0", "-1", "banana", "1.5", "", None])
    def test_malformed_repetitions_rejected(self, bad):
        with pytest.raises(ValueError, match="--repetitions"):
            parse_repetitions(bad)

    def test_valid_repetitions(self):
        assert parse_repetitions("3") == 3
        assert parse_repetitions(1) == 1

    def test_build_manifest_rejects_bad_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            build_manifest(scale=TINY, experiments=_figure1_registry(),
                           repetitions=0)


class TestRepetitionExecutor:
    def test_shifts_seed_offsets(self):
        captured = []

        class Probe:
            def run_specs(self, specs):
                captured.extend(specs)
                return [None] * len(specs)

        spec = CaseSpec("single", PAIRS[0], fpga_prototype(), "baseline",
                        TINY, seed_offset=5)
        RepetitionExecutor(Probe(), 2).run_spec(spec)
        assert captured[0].seed_offset == 7
        assert spec.seed_offset == 5  # original untouched

    def test_rejects_negative_repetition(self):
        with pytest.raises(ValueError):
            RepetitionExecutor(SweepExecutor(jobs=1), -1)


class TestAggregationDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        manifest = build_manifest(scale=TINY,
                                  experiments=_figure1_registry(),
                                  repetitions=2)
        cache = RunResultCache(directory=False, store=False)
        return run_serial(manifest, jobs=1, cache=cache)

    def _manifest(self):
        return build_manifest(scale=TINY, experiments=_figure1_registry(),
                              repetitions=2)

    def test_aggregated_output_has_error_bars(self, serial):
        figure = serial["figure1"].figure
        assert set(figure.errors) == set(figure.series)
        assert serial["figure1"].headers == ["series", "mean", "std", "95% CI"]

    def test_sharded_merge_matches_serial_in_any_order(self, serial,
                                                       tmp_path):
        manifest = self._manifest()
        for index in range(3):
            execute_shard(manifest, ShardSpec(index, 3), str(tmp_path),
                          jobs=1, cache=RunResultCache(directory=False,
                                                       store=False))
        paths = [shard_artifact_path(str(tmp_path), ShardSpec(i, 3))
                 for i in range(3)]
        expected = _result_bytes(serial)
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            merged = merge_artifacts([paths[i] for i in order],
                                     self._manifest())
            assert _result_bytes(merged) == expected, (
                f"aggregation depended on artifact order {order}")

    def test_store_exchange_matches_serial_in_any_ingest_order(self, serial,
                                                               tmp_path):
        # Each shard publishes into its own store and exports; a fresh
        # machine ingests the exports (in both orders) and replays the
        # aggregation with simulation forbidden.
        manifest = self._manifest()
        exports = []
        for index in range(2):
            store = ResultStore(str(tmp_path / f"store-{index}"))
            execute_shard(manifest, ShardSpec(index, 2),
                          str(tmp_path / "shards"), jobs=1,
                          cache=RunResultCache(directory=False, store=store))
            path, count = store.export(str(tmp_path / f"export-{index}.json"))
            assert count > 0
            exports.append(path)

        expected = _result_bytes(serial)
        for order in ([0, 1], [1, 0]):
            merged_store = ResultStore(str(tmp_path / f"merged-{order[0]}"))
            for index in order:
                merged_store.ingest(exports[index])
            cache = RunResultCache(directory=False, store=merged_store)
            replay = SweepExecutor(jobs=1, cache=cache,
                                   allow_simulation=False)
            results = run_serial(self._manifest(), executor=replay)
            assert replay.simulated == 0
            assert cache.store_hits == len(manifest.unique_cases())
            assert _result_bytes(results) == expected, (
                f"aggregation depended on ingest order {order}")

    def test_merge_rejects_mismatched_repetitions(self, tmp_path):
        manifest = self._manifest()
        execute_shard(manifest, None, str(tmp_path), jobs=1,
                      cache=RunResultCache(directory=False, store=False))
        path = shard_artifact_path(str(tmp_path), None)
        single = build_manifest(scale=TINY, experiments=_figure1_registry())
        with pytest.raises(ValueError, match="repetitions"):
            merge_artifacts([path], single)


class TestNonRepeatableExperiments:
    def _registry(self):
        def assemble(scale, executor):
            from repro.experiments.base import ExperimentResult

            results = executor.run_specs([
                CaseSpec("single", PAIRS[0], fpga_prototype(), "baseline",
                         scale)])
            return ExperimentResult(name="norep", description="figure-less",
                                    headers=["cycles"],
                                    rows=[[results[0].cycles]])

        return {"norep": ExperimentDef(
            "norep",
            plan=lambda scale: [CaseSpec("single", PAIRS[0], fpga_prototype(),
                                         "baseline", scale)],
            assemble=assemble, repeatable=False)}

    def test_registry_marks_figureless_tables_non_repeatable(self):
        from repro.experiments.manifest import experiment_registry

        registry = experiment_registry()
        for key in ("table4", "ablation_encoder", "ablation_key_refresh"):
            assert not registry[key].repeatable, (
                f"{key} has no figure: N-seed expansion would simulate "
                "repetitions its tabular fold must discard")
        for key in ("figure1", "figure8", "smt4_noisy_xor"):
            assert registry[key].repeatable

    def test_no_expansion_and_single_trajectory_assembly(self):
        reps = build_manifest(scale=TINY, experiments=self._registry(),
                              repetitions=3)
        base = build_manifest(scale=TINY, experiments=self._registry())
        assert list(reps.unique_cases()) == list(base.unique_cases())
        assert reps.total_planned() == base.total_planned() == 1
        executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=False,
                                                              store=False))
        aggregated = run_serial(reps, executor=executor)
        assert executor.simulated == 1  # no hidden per-seed re-simulation
        single = run_serial(base, jobs=1,
                            cache=RunResultCache(directory=False, store=False))
        assert _result_bytes(aggregated) == _result_bytes(single)


class TestSingleRepetitionIdentity:
    def test_default_manifest_is_unchanged_by_the_repetition_machinery(self):
        explicit = build_manifest(scale=PINNED_SCALE,
                                  experiments=PINNED_REGISTRY, repetitions=1)
        implicit = build_manifest(scale=PINNED_SCALE,
                                  experiments=PINNED_REGISTRY)
        assert explicit.manifest_hash() == implicit.manifest_hash()
        assert list(explicit.unique_cases()) == list(implicit.unique_cases())

    def test_single_repetition_results_carry_no_error_bars(self):
        manifest = build_manifest(scale=TINY,
                                  experiments=_figure1_registry())
        results = run_serial(manifest, jobs=1,
                             cache=RunResultCache(directory=False, store=False))
        figure = results["figure1"].figure
        assert figure.errors == {}
        payload = result_to_dict(results["figure1"])
        assert "errors" not in payload["figure"]
