"""Tests for the content-addressed result store.

Covers the entry round trip (put → get, export → ingest → verify),
corruption and cross-engine rejection, gc of stale engine revisions, and the
cache wiring: the store as the third level of
:class:`~repro.experiments.executor.RunResultCache` (memory →
``REPRO_CACHE_DIR`` → ``REPRO_STORE_DIR``) with write-through publication.
"""

import json
import os

import pytest

from repro.cpu.config import fpga_prototype
from repro.experiments.executor import (
    ENGINE_VERSION,
    CaseSpec,
    RunResultCache,
    SweepExecutor,
)
from repro.experiments.manifest import ExperimentDef, build_manifest
from repro.experiments.pipeline import execute_shard, shard_artifact_path
from repro.experiments.scaling import ExperimentScale
from repro.experiments.store import STORE_SCHEMA, ResultStore, env_store
from repro.workloads.pairs import SINGLE_THREAD_PAIRS

#: Deliberately tiny budgets: these tests exercise plumbing, not physics.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

CONFIG = fpga_prototype("gshare", n_entries=2048)


def _spec(preset="baseline", **overrides):
    defaults = dict(kind="single", pair=SINGLE_THREAD_PAIRS[0], config=CONFIG,
                    preset=preset, scale=TINY)
    defaults.update(overrides)
    return CaseSpec(**defaults)


@pytest.fixture(scope="module")
def simulated():
    """One real (key, RunResult) pair, simulated once for the module."""
    executor = SweepExecutor(jobs=1, cache=RunResultCache(directory=False,
                                                          store=False))
    spec = _spec()
    return spec.cache_key(), executor.run_spec(spec)


class TestEntryRoundTrip:
    def test_put_get(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        restored = store.get(key)
        assert restored is not None
        assert restored.cycles == result.cycles
        assert store.keys() == [key]
        assert len(store) == 1

    def test_put_skips_identical_and_rejects_conflicting(self, tmp_path,
                                                         simulated):
        import dataclasses

        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        before = os.path.getmtime(store.entry_path(key))
        store.put(key, result)  # identical: no rewrite
        assert os.path.getmtime(store.entry_path(key)) == before
        divergent = dataclasses.replace(result, cycles=result.cycles + 1)
        with pytest.raises(ValueError, match="different result digest"):
            store.put(key, divergent)
        assert store.get(key).cycles == result.cycles  # original intact

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).get("0" * 64) is None

    def test_needs_a_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        with pytest.raises(ValueError, match="REPRO_STORE_DIR"):
            ResultStore()
        assert env_store() is None

    def test_env_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert ResultStore().directory == str(tmp_path)
        assert env_store().directory == str(tmp_path)

    def test_entry_layout_is_engine_and_bucket_sharded(self, tmp_path,
                                                       simulated):
        from repro.experiments.executor import ENGINE_VERSION

        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        expected = tmp_path / ENGINE_VERSION / key[:2] / f"{key}.json"
        assert expected.exists()
        assert store.engines() == [ENGINE_VERSION]


class TestCorruption:
    def _corrupt_entry(self, store, key):
        path = store.entry_path(key)
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["result"]["cycles"] = payload["result"]["cycles"] + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    def test_tampered_entry_is_a_miss_and_verify_names_it(self, tmp_path,
                                                          simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        self._corrupt_entry(store, key)
        # verify is a read-only audit: it names the problem in place.
        report = store.verify()
        assert report["entries"] == 1
        assert len(report["corrupt"]) == 1
        assert "digest" in report["corrupt"][0][1]
        assert report["quarantined"] == 0
        # A read quarantines the entry (preserving the bytes) and misses.
        assert store.get(key) is None
        report = store.verify()
        assert report["corrupt"] == []
        assert report["quarantined"] == 1
        assert store.quarantined() == [
            os.path.join(ENGINE_VERSION, key[:2], f"{key}.json")]

    def test_truncated_entry_is_a_miss(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        with open(store.entry_path(key), "w", encoding="utf-8") as handle:
            handle.write('{"schema":')
        assert store.verify()["corrupt"][0][1] == "not valid JSON"
        assert store.get(key) is None
        assert not os.path.exists(store.entry_path(key))  # quarantined
        assert store.verify()["quarantined"] == 1

    def test_misfiled_key_detected(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        wrong = "f" * 64
        target = store.entry_path(wrong)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.rename(store.entry_path(key), target)
        report = store.verify()
        assert "filed under key" in report["corrupt"][0][1]
        assert store.get(wrong) is None
        assert store.verify()["quarantined"] == 1

    def test_put_quarantines_and_replaces_corrupt_entry(self, tmp_path,
                                                        simulated):
        # Publication self-heals: the damaged bytes go to quarantine, the
        # fresh result takes the slot, and the store serves it again.
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        with open(store.entry_path(key), "w", encoding="utf-8") as handle:
            handle.write("{torn")
        store.put(key, result)
        assert store.get(key) is not None
        assert store.verify()["corrupt"] == []
        assert store.verify()["quarantined"] == 1

    def test_quarantine_is_invisible_to_engines_and_gc(self, tmp_path,
                                                       simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        self._corrupt_entry(store, key)
        assert store.get(key) is None  # quarantines
        assert store.keys() == []  # nothing servable left
        assert "quarantine" not in store.engines()
        assert store.gc() == 0
        assert store.verify()["quarantined"] == 1  # gc left the evidence

    def test_export_refuses_misfiled_entries(self, tmp_path, simulated):
        # An internally-consistent entry copied under another key's path
        # must not be exported (and later replayed) as that key's result.
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        wrong = "e" * 64
        target = store.entry_path(wrong)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        import shutil

        shutil.copyfile(store.entry_path(key), target)
        with pytest.raises(ValueError, match="mis-filed"):
            store.export(str(tmp_path / "export.json"))

    def test_export_refuses_corrupt_entries(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        self._corrupt_entry(store, key)
        with pytest.raises(ValueError, match="verify"):
            store.export(str(tmp_path / "export.json"))

    def test_clean_store_verifies(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        report = store.verify()
        assert report["corrupt"] == []
        assert report["entries"] == 1


class TestExchange:
    def test_export_ingest_round_trip(self, tmp_path, simulated):
        key, result = simulated
        source = ResultStore(str(tmp_path / "a"))
        source.put(key, result)
        path, count = source.export(str(tmp_path / "export.json"))
        assert count == 1
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["schema"] == STORE_SCHEMA
        assert payload["kind"] == "store-export"
        assert list(payload["cases"]) == [key]

        target = ResultStore(str(tmp_path / "b"))
        assert target.ingest(path) == (1, 0)
        assert target.get(key).cycles == result.cycles
        # Re-ingesting identical content is a clean no-op.
        assert target.ingest(path) == (0, 1)
        assert target.verify()["corrupt"] == []

    def test_ingests_shard_artifacts_directly(self, tmp_path, simulated):
        # The `run all --shard` artifact and the store export share the
        # `cases` exchange shape; one ingest path covers both.
        registry = {"probe": ExperimentDef(
            "probe",
            plan=lambda scale: [_spec()],
            assemble=lambda scale, executor: None)}
        manifest = build_manifest(scale=TINY, experiments=registry)
        execute_shard(manifest, None, str(tmp_path / "shards"), jobs=1,
                      cache=RunResultCache(directory=False, store=False))
        artifact = shard_artifact_path(str(tmp_path / "shards"), None)
        store = ResultStore(str(tmp_path / "store"))
        added, skipped = store.ingest(artifact)
        assert (added, skipped) == (1, 0)
        assert store.keys() == [_spec().cache_key()]

    def test_cross_engine_ingest_rejected(self, tmp_path, simulated):
        key, result = simulated
        source = ResultStore(str(tmp_path / "a"))
        source.put(key, result)
        path, _ = source.export(str(tmp_path / "export.json"))
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["engine"] = "0000.0-other-engine"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        target = ResultStore(str(tmp_path / "b"))
        with pytest.raises(ValueError, match="engine"):
            target.ingest(path)
        assert len(target) == 0

    def test_corrupt_case_payload_rejected(self, tmp_path, simulated):
        key, result = simulated
        source = ResultStore(str(tmp_path / "a"))
        source.put(key, result)
        path, _ = source.export(str(tmp_path / "export.json"))
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["cases"][key] = {"not": "a run result"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="RunResult"):
            ResultStore(str(tmp_path / "b")).ingest(path)

    def test_conflicting_digest_rejected(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path / "store"))
        store.put(key, result)
        source = ResultStore(str(tmp_path / "a"))
        source.put(key, result)
        path, _ = source.export(str(tmp_path / "export.json"))
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["cases"][key]["cycles"] = payload["cases"][key]["cycles"] + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="different result digest"):
            store.ingest(path)

    def test_traversal_keys_rejected(self, tmp_path):
        # Artifacts cross machine boundaries; a crafted key must never
        # become a filesystem path outside the store.
        evil = tmp_path / "evil.json"
        from repro.experiments.executor import ENGINE_VERSION

        from repro.experiments.pipeline import ARTIFACT_SCHEMA

        store = ResultStore(str(tmp_path / "store"))
        for bad_key in ("../../../escape", "a" * 64 + "\n", "A" * 64, "42"):
            evil.write_text(json.dumps({
                "schema": ARTIFACT_SCHEMA,
                "engine": ENGINE_VERSION,
                "cases": {bad_key: {"cycles": 1}}}))
            with pytest.raises(ValueError, match="SHA-256 cache key"):
                store.ingest(str(evil))
        assert not (tmp_path / "escape.json").exists()
        assert len(store) == 0

    def test_unknown_schema_rejected(self, tmp_path, simulated):
        key, result = simulated
        source = ResultStore(str(tmp_path / "a"))
        source.put(key, result)
        path, _ = source.export(str(tmp_path / "export.json"))
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["schema"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="schema"):
            ResultStore(str(tmp_path / "b")).ingest(path)

    def test_non_artifact_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="shard artifact or store export"):
            ResultStore(str(tmp_path / "store")).ingest(str(bogus))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            ResultStore(str(tmp_path / "store")).ingest(str(broken))


class TestGc:
    def test_gc_drops_stale_engines_only(self, tmp_path, simulated):
        from repro.cpu.stats import run_result_to_dict

        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        store._write(key, run_result_to_dict(result),
                     engine="0000.0-superseded")
        store._write("ab" * 32, run_result_to_dict(result),
                     engine="0000.0-superseded")
        assert len(store.keys("0000.0-superseded")) == 2
        assert store.gc() == 2
        assert store.keys("0000.0-superseded") == []
        assert store.get(key) is not None
        assert store.gc() == 0  # idempotent

    def test_gc_leaves_foreign_directories_in_a_shared_root(self, tmp_path,
                                                            simulated):
        # A store rooted next to the user's own folders (REPRO_STORE_DIR
        # pointing at a shared results directory) must gc only directories
        # with the store's bucket layout, never siblings.
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)  # writes the marker + one engine dir
        (tmp_path / "notes").mkdir()
        (tmp_path / "notes" / "todo.txt").write_text("keep me")
        (tmp_path / "drafts").mkdir()  # empty foreign dir in a marked root
        assert store.gc() == 0
        assert (tmp_path / "notes" / "todo.txt").exists()
        assert (tmp_path / "drafts").exists()
        # Foreign content is invisible to every operation, not just gc: a
        # healthy store in a shared root verifies clean and exports fine.
        from repro.experiments.executor import ENGINE_VERSION

        report = store.verify()
        assert report["corrupt"] == []
        assert list(report["engines"]) == [ENGINE_VERSION]
        _path, count = store.export(str(tmp_path / "notes" / "export.json"))
        assert count == 1

    def test_stray_file_in_engine_dir_does_not_hide_entries(self, tmp_path,
                                                            simulated):
        # A stray file at the engine root must not blind verify/gc to the
        # engine's real entries (get() would still serve them, so hiding
        # them from the audits would let corruption live forever).
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        from repro.experiments.executor import ENGINE_VERSION

        (tmp_path / ENGINE_VERSION / "stray.txt").write_text("oops")
        assert store.engines() == [ENGINE_VERSION]
        assert store.verify()["entries"] == 1

    def test_gc_refuses_directories_that_are_not_stores(self, tmp_path):
        # A mistyped --dir/REPRO_STORE_DIR must never turn gc into recursive
        # deletion of arbitrary user data: without the marker written by the
        # store itself, every subdirectory would look like a "stale engine".
        victim = tmp_path / "not-a-store"
        (victim / "src").mkdir(parents=True)
        (victim / "docs").mkdir()
        with pytest.raises(ValueError, match="missing"):
            ResultStore(str(victim)).gc()
        assert (victim / "src").exists() and (victim / "docs").exists()
        # An empty/nonexistent directory is a clean no-op, not an error.
        assert ResultStore(str(tmp_path / "absent")).gc() == 0


class TestCacheWiring:
    def test_put_writes_through_and_get_promotes(self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path / "store"))
        publisher = RunResultCache(directory=False, store=store)
        publisher.put(key, result)
        assert store.get(key) is not None  # write-through publication

        disk_dir = tmp_path / "cache"
        consumer = RunResultCache(directory=str(disk_dir), store=store)
        restored = consumer.get(key)
        assert restored is not None
        assert consumer.store_hits == 1
        assert consumer.hits == 1
        # The hit was promoted to the local disk level.
        assert (disk_dir / f"{key}.json").exists()
        # And to memory: a second get is served without touching the store.
        store_dir_entry = store.entry_path(key)
        os.remove(store_dir_entry)
        assert consumer.get(key) is not None
        assert consumer.store_hits == 1

    def test_conflicting_disk_entry_heals_from_the_store(self, tmp_path,
                                                         simulated):
        import dataclasses

        # A bit-rotted (but parseable) disk-cache entry conflicting with the
        # digest-verified store entry must not crash the read path: the
        # store's result is served and the disk copy rewritten.
        key, result = simulated
        store = ResultStore(str(tmp_path / "store"))
        store.put(key, result)
        disk_dir = tmp_path / "cache"
        rotted = dataclasses.replace(result, cycles=result.cycles + 7)
        RunResultCache(directory=str(disk_dir), store=False).put(key, rotted)

        cache = RunResultCache(directory=str(disk_dir), store=store)
        served = cache.get(key)
        assert served.cycles == result.cycles  # store's verified value
        healed = RunResultCache(directory=str(disk_dir), store=False)
        assert healed.get(key).cycles == result.cycles  # disk rewritten

    def test_disk_hit_publishes_to_store(self, tmp_path, simulated):
        # "Every finished simulation reaches the store" must hold on a
        # warm-cache machine too: a disk hit is still a publication.
        key, result = simulated
        disk_only = RunResultCache(directory=str(tmp_path / "cache"),
                                   store=False)
        disk_only.put(key, result)
        store = ResultStore(str(tmp_path / "store"))
        warm = RunResultCache(directory=str(tmp_path / "cache"), store=store)
        assert warm.get(key) is not None
        assert warm.store_hits == 0  # it was a disk hit...
        assert store.get(key) is not None  # ...but the store got published

    def test_executor_replays_across_machines_via_store(self, tmp_path):
        store_a = ResultStore(str(tmp_path / "shared"))
        machine_a = SweepExecutor(
            jobs=1, cache=RunResultCache(directory=False, store=store_a))
        machine_a.run_spec(_spec(preset="complete_flush"))
        assert machine_a.simulated == 1

        # A different "machine": fresh memory, no disk cache, same store.
        store_b = ResultStore(str(tmp_path / "shared"))
        machine_b = SweepExecutor(
            jobs=1, cache=RunResultCache(directory=False, store=store_b))
        result = machine_b.run_spec(_spec(preset="complete_flush"))
        assert machine_b.simulated == 0
        assert machine_b.cache.store_hits == 1
        assert result.mechanism == "complete_flush"

    def test_cache_picks_up_env_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        cache = RunResultCache(directory=None)
        assert cache.store is not None
        assert cache.store.directory == str(tmp_path)
        monkeypatch.delenv("REPRO_STORE_DIR")
        assert RunResultCache(directory=None).store is None

    def test_store_false_opts_out_of_the_env_store(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert RunResultCache(directory=False, store=False).store is None

    def test_directory_false_opts_out_of_the_env_cache_dir(self, tmp_path,
                                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert RunResultCache(directory=False, store=False).directory is None

    def test_merge_replay_ignores_the_env_store_and_cache(self, tmp_path,
                                                          simulated,
                                                          monkeypatch):
        # The merge's replay-only executor must be a pure function of the
        # artifacts: a configured REPRO_STORE_DIR or REPRO_CACHE_DIR holding
        # a case that no shard executed must NOT rescue an incomplete
        # plan()/assemble() pair, and the artifact cases must not leak into
        # the user's store or cache directory.
        from repro.experiments.pipeline import merge_artifacts

        key, result = simulated
        env_store_dir = tmp_path / "env-store"
        hidden = _spec(preset="complete_flush")
        executor = SweepExecutor(
            jobs=1, cache=RunResultCache(
                directory=False, store=ResultStore(str(env_store_dir))))
        executor.run_spec(hidden)

        # plan() misses the complete_flush case its assemble() reads.
        registry = {"broken": ExperimentDef(
            "broken",
            plan=lambda scale: [_spec()],
            assemble=lambda scale, ex: ex.run_specs([_spec(), hidden]))}
        manifest = build_manifest(scale=TINY, experiments=registry)
        execute_shard(manifest, None, str(tmp_path / "shards"), jobs=1,
                      cache=RunResultCache(directory=False, store=False))
        artifact = shard_artifact_path(str(tmp_path / "shards"), None)

        env_cache_dir = tmp_path / "env-cache"
        RunResultCache(directory=str(env_cache_dir),
                       store=False).put(hidden.cache_key(), result)
        monkeypatch.setenv("REPRO_STORE_DIR", str(env_store_dir))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_cache_dir))
        with pytest.raises(RuntimeError, match="replay-only"):
            merge_artifacts([artifact], manifest)
        # And nothing from the artifacts was written through to the store
        # or the cache directory.
        assert ResultStore(str(env_store_dir)).get(key) is None
        assert RunResultCache(directory=str(env_cache_dir),
                              store=False).get(key) is None


class TestManifestScope:
    """Manifest indexes: the unit of scoped gc, export and federation."""

    @staticmethod
    def _fill(store, result, keys):
        from repro.cpu.stats import run_result_to_dict

        for key in keys:
            store._write(key, run_result_to_dict(result))

    def test_register_list_and_lookup(self, tmp_path, simulated):
        key, _result = simulated
        store = ResultStore(str(tmp_path))
        manifest_hash = "1f" * 32
        store.register_manifest(manifest_hash, [key])
        assert store.manifests() == [manifest_hash]
        assert store.manifest_keys(manifest_hash) == [key]
        # Idempotent re-registration; a different case set under the same
        # hash is the manifest-shaped determinism violation put() refuses.
        store.register_manifest(manifest_hash, [key])
        with pytest.raises(ValueError, match="different case set"):
            store.register_manifest(manifest_hash, ["ab" * 32])

    def test_bad_hashes_and_keys_refused(self, tmp_path, simulated):
        key, _result = simulated
        store = ResultStore(str(tmp_path))
        with pytest.raises(ValueError, match="not a SHA-256 digest"):
            store.register_manifest("../../escape", [key])
        with pytest.raises(ValueError, match="not a SHA-256 cache key"):
            store.register_manifest("2f" * 32, ["../../etc/passwd"])

    def test_engine_prefixed_hash_accepted_everywhere(self, tmp_path,
                                                      simulated):
        # 'repro plan --hash' prints engine:hash; scoped lookup, export and
        # gc must take that spelling as-is, not just the bare digest.
        from repro.experiments.executor import ENGINE_VERSION

        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        manifest_hash = "8f" * 32
        store.register_manifest(manifest_hash, [key])
        prefixed = f"{ENGINE_VERSION}:{manifest_hash}"
        assert store.manifest_keys(prefixed) == [key]
        _path, count = store.export(str(tmp_path / "scoped.json"),
                                    manifest_hashes=[prefixed])
        assert count == 1
        assert store.gc(manifest_hashes=[prefixed]) == 0
        # The live manifest named by its prefixed spelling survives gc.
        assert store.manifests() == [manifest_hash]

    def test_foreign_engine_prefix_refused(self, tmp_path, simulated):
        key, _result = simulated
        store = ResultStore(str(tmp_path))
        store.register_manifest("9f" * 32, [key])
        with pytest.raises(ValueError, match="names engine '1999.0-other'"):
            store.manifest_keys(f"1999.0-other:{'9f' * 32}")
        with pytest.raises(ValueError, match="repro plan --hash"):
            store.manifest_keys("not-a-digest")

    def test_unregistered_manifest_lookup_names_the_registered(
            self, tmp_path, simulated):
        key, _result = simulated
        store = ResultStore(str(tmp_path))
        store.register_manifest("3f" * 32, [key])
        with pytest.raises(ValueError, match="registered: 3f3f3f3f3f3f"):
            store.manifest_keys("4f" * 32)

    def test_manifest_indexes_invisible_to_keys_verify_export(
            self, tmp_path, simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        store.register_manifest("5f" * 32, [key])
        assert store.keys() == [key]
        report = store.verify()
        assert report["entries"] == 1 and report["corrupt"] == []
        _path, count = store.export(str(tmp_path / "all.json"))
        assert count == 1

    def test_gc_prunes_superseded_manifest_entries(self, tmp_path,
                                                   simulated):
        _key, result = simulated
        store = ResultStore(str(tmp_path))
        old_key, new_key = "aa" * 32, "bb" * 32
        self._fill(store, result, [old_key, new_key])
        old_manifest, new_manifest = "6f" * 32, "7f" * 32
        store.register_manifest(old_manifest, [old_key])
        store.register_manifest(new_manifest, [new_key])
        removed = store.gc(manifest_hashes=[new_manifest])
        assert removed == 1
        assert store.keys() == [new_key]
        # The superseded manifest's index went with its entries.
        assert store.manifests() == [new_manifest]

    def test_gc_retains_entries_shared_across_live_manifests(
            self, tmp_path, simulated):
        _key, result = simulated
        store = ResultStore(str(tmp_path))
        shared, only_old = "cc" * 32, "dd" * 32
        self._fill(store, result, [shared, only_old])
        old_manifest, new_manifest = "8f" * 32, "9f" * 32
        store.register_manifest(old_manifest, [shared, only_old])
        store.register_manifest(new_manifest, [shared])
        # Both manifests live: nothing to prune.
        assert store.gc(manifest_hashes=[old_manifest, new_manifest]) == 0
        assert len(store) == 2
        # Only the new manifest live: the shared entry survives.
        assert store.gc(manifest_hashes=[new_manifest]) == 1
        assert store.keys() == [shared]

    def test_gc_with_unregistered_manifest_deletes_nothing(self, tmp_path,
                                                           simulated):
        key, result = simulated
        store = ResultStore(str(tmp_path))
        store.put(key, result)
        store.register_manifest("af" * 32, [key])
        with pytest.raises(ValueError, match="not registered"):
            store.gc(manifest_hashes=["bf" * 32])
        # The keep set is resolved before any deletion, so the typo'd hash
        # cost nothing.
        assert store.keys() == [key]
        assert store.manifests() == ["af" * 32]

    def test_scoped_gc_still_refuses_non_store_directories(self, tmp_path):
        victim = tmp_path / "not-a-store"
        (victim / "src").mkdir(parents=True)
        with pytest.raises(ValueError, match="missing"):
            ResultStore(str(victim)).gc(manifest_hashes=["cf" * 32])
        assert (victim / "src").exists()

    def test_export_scoped_to_manifests(self, tmp_path, simulated):
        _key, result = simulated
        store = ResultStore(str(tmp_path))
        mine, other = "ee" * 32, "ff" * 32
        self._fill(store, result, [mine, other])
        store.register_manifest("d1" * 32, [mine])
        path, count = store.export(str(tmp_path / "scoped.json"),
                                   manifest_hashes=["d1" * 32])
        assert count == 1
        target = ResultStore(str(tmp_path / "target"))
        added, _skipped = target.ingest(path)
        assert added == 1
        assert target.keys() == [mine]
        with pytest.raises(ValueError, match="not registered"):
            store.export(str(tmp_path / "nope.json"),
                         manifest_hashes=["d2" * 32])


class TestIngestUrl:
    def test_non_http_schemes_refused(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for url in ("ftp://host/export.json", "file:///etc/passwd",
                    "gopher://x"):
            with pytest.raises(ValueError, match="must be http"):
                store.ingest_url(url)

    def test_unreachable_url_is_a_named_download_failure(self, tmp_path):
        store = ResultStore(str(tmp_path))
        # A port bound then closed: connection refused, quickly.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ValueError, match="download failed"):
            store.ingest_url(f"http://127.0.0.1:{port}/export.json")
