"""Tests for the sensitivity-study experiment drivers."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentScale
from repro.experiments.sensitivity import (
    mispredict_penalty_sensitivity,
    smt4_noisy_xor,
    switch_interval_sensitivity,
)


@pytest.fixture(scope="module")
def tiny_scale():
    """A very small scale so the sensitivity runs stay fast in CI."""
    return ExperimentScale().scaled_by(0.15)


class TestRegistration:
    def test_sensitivity_experiments_registered(self):
        assert EXPERIMENTS["ablation_switch_interval"] is switch_interval_sensitivity
        assert EXPERIMENTS["ablation_penalty"] is mispredict_penalty_sensitivity
        assert EXPERIMENTS["smt4_noisy_xor"] is smt4_noisy_xor


class TestSwitchIntervalSensitivity:
    def test_structure_and_bounds(self, tiny_scale):
        result = switch_interval_sensitivity(
            tiny_scale, cases=("case6",), intervals_m=(4, 12), predictor="gshare")
        assert result.figure is not None
        assert result.figure.categories == ["4M", "12M"]
        assert set(result.figure.series) == {"case6"}
        # Single-thread overheads stay small in magnitude even at this scale.
        for value in result.figure.series["case6"]:
            assert -0.2 < value < 0.3
        # The table carries one row per case plus the mean row.
        assert len(result.rows) == 2
        assert result.rows[-1][0] == "mean"

    def test_render_mentions_preset(self, tiny_scale):
        result = switch_interval_sensitivity(
            tiny_scale, cases=("case6",), intervals_m=(8,), predictor="gshare")
        assert "noisy_xor_bp" in result.render()


class TestPenaltySensitivity:
    def test_rows_follow_penalties(self, tiny_scale):
        result = mispredict_penalty_sensitivity(
            tiny_scale, case="case6", penalties=(8, 20), predictor="gshare")
        assert [row[0] for row in result.rows] == ["8 cycles", "20 cycles"]
        assert result.figure is not None
        assert len(result.figure.series["noisy_xor_bp"]) == 2

    def test_reports_baseline_mpki(self, tiny_scale):
        result = mispredict_penalty_sensitivity(
            tiny_scale, case="case6", penalties=(11,), predictor="gshare")
        mpki = float(result.rows[0][2])
        assert mpki > 0.0


class TestSmt4NoisyXor:
    def test_structure(self, tiny_scale):
        result = smt4_noisy_xor(tiny_scale, predictor="gshare",
                                presets=("noisy_xor_bp",), max_quads=1)
        assert result.figure is not None
        assert len(result.figure.categories) == 1
        assert set(result.figure.series) == {"noisy_xor_bp"}
        assert result.rows[0][0] == "noisy_xor_bp"

    def test_flush_costs_more_than_noisy_xor_on_smt4(self, tiny_scale):
        result = smt4_noisy_xor(tiny_scale, predictor="gshare",
                                presets=("complete_flush", "noisy_xor_bp"),
                                max_quads=2)
        averages = result.figure.averages()
        assert averages["complete_flush"] >= averages["noisy_xor_bp"] - 0.01
