"""Tests for the experiment drivers.

The heavyweight sweeps (all cases, all predictors) belong to the benchmark
harness; here every driver is exercised on a reduced problem size to verify
the plumbing, the result structure and the cheap experiments' correctness.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentScale,
    default_scale,
    env_scale_factor,
    quick_scale,
)
from repro.experiments import (
    ablations,
    fig1_flush_single,
    fig7_xor_btb,
    fig10_smt_predictors,
    poc_attacks,
    table2_configs,
    table3_benchmarks,
    table4_privilege,
    table5_hwcost,
)
from repro.workloads import SINGLE_THREAD_PAIRS, SMT2_PAIRS

#: A deliberately tiny scale so driver tests stay fast.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=4_000, st_warmup_branches=1_000,
    smt_instructions=30_000, smt_warmup_instructions=8_000,
    poc_iterations=200, table1_iterations=40, seed=7)


class TestScaling:
    def test_default_scale_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert env_scale_factor() == 0.5
        scale = default_scale()
        assert scale.st_target_branches == ExperimentScale().st_target_branches // 2

    @pytest.mark.parametrize("bad", ["banana", "0", "-1", "inf", "nan"])
    def test_invalid_env_value_is_rejected_by_name(self, bad, monkeypatch):
        # A typo'd REPRO_SCALE used to silently run at full fidelity; now it
        # fails at parse time, naming the variable.
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            env_scale_factor()

    def test_env_value_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1e9")
        assert env_scale_factor() == 100.0

    def test_quick_scale_is_smaller(self):
        assert quick_scale().st_target_branches < ExperimentScale().st_target_branches

    def test_scaled_by_has_floors(self):
        tiny = ExperimentScale().scaled_by(1e-9)
        assert tiny.st_target_branches >= 1_000


class TestRegistry:
    def test_all_fourteen_paper_artifacts_plus_ablations_registered(self):
        expected = {"figure1", "figure2", "figure3", "figure7", "figure8",
                    "figure9", "figure10", "table1", "table2", "table3",
                    "table4", "table5", "poc_attacks", "ablation_encoder",
                    "ablation_key_refresh", "ablation_pht_granularity"}
        assert expected <= set(EXPERIMENTS)


class TestCheapExperiments:
    def test_table2_lists_both_machines(self):
        result = table2_configs.run()
        assert isinstance(result, ExperimentResult)
        assert len(result.headers) == 3
        assert any("BTB" in str(row[0]) for row in result.rows)

    def test_table3_lists_twelve_cases(self):
        result = table3_benchmarks.run()
        assert len(result.rows) == 12
        assert result.rows[0][1] == "gcc+calculix"

    def test_table5_matches_paper_trends(self):
        result = table5_hwcost.run()
        assert len(result.rows) == 6
        timings = [float(row[1].rstrip("%")) for row in result.rows[:3]]
        assert timings[0] < timings[1] < timings[2]
        areas = [float(row[3].rstrip("%")) for row in result.rows[:3]]
        assert areas[0] > areas[2]

    def test_render_produces_text(self):
        text = table5_hwcost.run().render()
        assert "Table 5" in text and "paper" in text.lower()

    def test_poc_attacks_reproduce_headline_numbers(self):
        result = poc_attacks.run(TINY)
        by_mechanism = {row[0]: row for row in result.rows}
        baseline_btb = float(by_mechanism["baseline"][1].rstrip("%"))
        protected_btb = float(by_mechanism["noisy_xor_bp"][1].rstrip("%"))
        assert baseline_btb > 90.0
        assert protected_btb < 5.0


class TestFigureDrivers:
    def test_fig1_structure_on_reduced_problem(self):
        result = fig1_flush_single.run(TINY, pairs=SINGLE_THREAD_PAIRS[:2])
        assert result.figure is not None
        assert result.figure.categories == ["case1", "case2"]
        assert set(result.figure.series) == {"flush-4M", "flush-8M", "flush-12M"}

    def test_fig7_honours_interval_subset(self):
        result = fig7_xor_btb.run(TINY, pairs=SINGLE_THREAD_PAIRS[5:6],
                                  intervals=["8M"])
        assert set(result.figure.series) == {"XOR-BTB-8M", "Noisy-XOR-BTB-8M"}
        assert result.figure.categories == ["case6"]

    def test_fig10_reduced_run_reports_mpki_ordering(self):
        result = fig10_smt_predictors.run(TINY, predictors=["gshare", "tage"],
                                          pairs=SMT2_PAIRS[7:9])
        mpki = {row[0]: float(row[1]) for row in result.rows[:2]}
        assert mpki["gshare"] > mpki["tage"]
        assert len(result.figure.series) == 2 * 3


class TestAblations:
    def test_encoder_ablation_runs(self):
        result = ablations.encoder_ablation(TINY, case="case6")
        assert [row[0] for row in result.rows] == ["xor", "shift_xor", "sbox"]

    def test_key_refresh_ablation_shows_security_gap(self):
        result = ablations.key_refresh_ablation(TINY, case="case5")
        by_policy = {row[0]: row for row in result.rows}
        paper_policy = by_policy["context + privilege switches (paper)"]
        weak_policy = by_policy["context switches only"]
        assert float(paper_policy[2].rstrip("%")) < 5.0
        assert float(weak_policy[2].rstrip("%")) > 50.0

    def test_pht_granularity_ablation_separates_schemes(self):
        result = ablations.pht_granularity_ablation(TINY, iterations=120)
        by_scheme = {row[0]: row for row in result.rows}
        naive = float(by_scheme["XOR-PHT (2-bit words, fixed key)"][2].rstrip("%"))
        noisy = float(by_scheme["Noisy-XOR-PHT"][2].rstrip("%"))
        assert naive > 80.0
        assert noisy < 75.0
