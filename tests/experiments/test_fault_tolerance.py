"""Tests for the fault-tolerant execution layer.

Every recovery path is exercised deterministically through the
``REPRO_FAULT_SPEC`` injection harness (:mod:`repro.testing.faults`):
retry-to-success, retry exhaustion (fail-fast and ``keep_going``), timeout
classification, worker-crash (``BrokenProcessPool``) recovery, real
hang-then-timeout pool abandonment, Ctrl-C propagation, crash-then-resume
journal replay, torn-write detection and orphaned tmp-file sweeping.

The headline invariant: a run that crashed mid-shard and was resumed
produces case payloads — and therefore merged figures — **bit-identical**
to an uninterrupted run.  (Shard-artifact ``stats`` legitimately differ:
they record what each execution actually simulated.)
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cpu.config import fpga_prototype
from repro.experiments import fig1_flush_single
from repro.experiments.executor import (
    CaseSpec,
    ExecutionError,
    RunResultCache,
    SweepExecutor,
    atomic_write_json,
    sweep_tmp_files,
)
from repro.experiments.manifest import ExperimentDef, build_manifest
from repro.experiments.pipeline import (
    execute_shard,
    failure_manifest_path,
    journal_path,
    load_artifact,
    load_journal,
    merge_artifacts,
    shard_artifact_path,
)
from repro.experiments.scaling import ExperimentScale
from repro.experiments.store import ResultStore
from repro.testing.faults import (
    FaultClause,
    InjectedFault,
    parse_fault_spec,
)
from repro.workloads import SINGLE_THREAD_PAIRS

#: Deliberately tiny budgets: these tests exercise plumbing, not physics.
TINY = ExperimentScale(
    time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
    st_target_branches=1_200, st_warmup_branches=300,
    smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)

CONFIG = fpga_prototype("gshare", n_entries=2048)


def _spec(preset="baseline", **overrides):
    defaults = dict(kind="single", pair=SINGLE_THREAD_PAIRS[0], config=CONFIG,
                    preset=preset, scale=TINY)
    defaults.update(overrides)
    return CaseSpec(**defaults)


def _cache():
    # Memory-only: isolated from any REPRO_CACHE_DIR / REPRO_STORE_DIR.
    return RunResultCache(directory=False, store=False)


def _executor(jobs=1, *, retries=0, keep_going=False, timeout=False,
              cache=None, **kwargs):
    # backoff=0: the retry paths must run instantly in tier-1.
    return SweepExecutor(jobs=jobs, cache=cache or _cache(), retries=retries,
                         backoff=0, keep_going=keep_going, timeout=timeout,
                         **kwargs)


class TestFaultSpecParsing:
    def test_clauses_round_trip(self):
        clauses = parse_fault_spec(
            "crash:case_idx=1,timeout:key~fig8;attempts=99,"
            "hang:seconds=2.5,torn_write:path~shard-,fail,interrupt")
        assert [c.kind for c in clauses] == [
            "crash", "timeout", "hang", "torn_write", "fail", "interrupt"]
        assert clauses[0] == FaultClause("crash", case_idx=1)
        assert clauses[1] == FaultClause("timeout", match="fig8", attempts=99)
        assert clauses[2].seconds == 2.5
        assert clauses[3].matches_path("out/shard-0-of-2.json")
        assert not clauses[3].matches_path("out/figure1.json")

    def test_unknown_kind_is_named_error(self):
        with pytest.raises(ValueError,
                           match="REPRO_FAULT_SPEC.*unknown fault kind"):
            parse_fault_spec("explode:case_idx=0")

    def test_unknown_selector_is_named_error(self):
        with pytest.raises(ValueError, match="unknown selector"):
            parse_fault_spec("fail:when=later")

    def test_malformed_int_is_named_error(self):
        with pytest.raises(ValueError, match="case_idx"):
            parse_fault_spec("fail:case_idx=one")

    def test_attempts_window(self):
        clause = parse_fault_spec("fail:attempts=2")[0]
        assert clause.matches_case(index=0, key="k", label="l", attempt=1)
        assert clause.matches_case(index=0, key="k", label="l", attempt=2)
        assert not clause.matches_case(index=0, key="k", label="l", attempt=3)

    def test_bad_spec_fails_at_executor_construction(self, monkeypatch):
        # Not as a cryptic crash inside the first worker.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "explode")
        with pytest.raises(ValueError, match="REPRO_FAULT_SPEC"):
            SweepExecutor(jobs=1, cache=_cache())


class TestSerialFaults:
    def test_transient_failure_is_retried_to_success(self, monkeypatch):
        clean = _executor().run_spec(_spec())
        monkeypatch.setenv("REPRO_FAULT_SPEC", "fail:attempts=1")
        executor = _executor(retries=2)
        result = executor.run_spec(_spec())
        assert executor.failures == []
        assert executor.simulated == 1
        assert result.cycles == clean.cycles

    def test_retry_exhaustion_is_a_structured_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "fail:attempts=99")
        executor = _executor(retries=1)
        with pytest.raises(ExecutionError, match="injected fail"):
            executor.run_spec(_spec())
        (failure,) = executor.failures
        assert failure.attempts == 2  # first try + one retry
        assert failure.error == "InjectedFault"
        assert failure.timed_out is False
        assert failure.key == _spec().cache_key()

    def test_keep_going_completes_healthy_cases(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:case_idx=0;attempts=99")
        executor = _executor(keep_going=True)
        results = executor.run_specs([_spec(), _spec(preset="complete_flush")])
        assert results[0] is None
        assert results[1] is not None and results[1].mechanism == "complete_flush"
        (failure,) = executor.failures
        assert failure.error == "InjectedCrash"  # serial degrades the kill

    def test_injected_timeout_classifies_as_timed_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "timeout:attempts=99")
        executor = _executor(keep_going=True)
        assert executor.run_spec(_spec()) is None
        assert executor.failures[0].timed_out is True

    def test_interrupt_propagates(self, monkeypatch):
        # KeyboardInterrupt is never swallowed by the retry machinery; the
        # CLI maps it to exit code 130.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "interrupt")
        with pytest.raises(KeyboardInterrupt):
            _executor(retries=5).run_spec(_spec())

    def test_failed_key_is_not_retried_within_executor_lifetime(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "fail:attempts=99")
        executor = _executor(keep_going=True)
        assert executor.run_spec(_spec()) is None
        # A later batch naming the same case reuses the failure verdict
        # instead of burning the retry budget again.
        assert executor.run_specs([_spec()]) == [None]
        assert len(executor.failures) == 1


class TestParallelFaults:
    SPECS = staticmethod(lambda: [
        _spec(preset="baseline"), _spec(preset="complete_flush")])

    def test_worker_crash_recovers_bit_identically(self, monkeypatch):
        expected = _executor().run_specs(self.SPECS())
        # Attempt 1 of case 0 hard-kills its worker (BrokenProcessPool);
        # the pool is rebuilt and both cases — the crasher and any
        # co-victim — retry and succeed.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:case_idx=0;attempts=1")
        executor = _executor(jobs=2, retries=2)
        observed = executor.run_specs(self.SPECS())
        assert executor.failures == []
        assert [r.cycles for r in observed] == [r.cycles for r in expected]
        assert [r.mechanism for r in observed] \
            == [r.mechanism for r in expected]

    def test_worker_crash_exhaustion_under_keep_going(self, monkeypatch):
        # Every case crashes its worker on every attempt.  A broken pool
        # cannot tell the crasher from its co-victims, so each in-flight
        # case consumes an attempt per break; with retries=1 both exhaust
        # after two pool rebuilds — and keep_going still returns instead of
        # raising, with one structured failure per case.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:attempts=99")
        executor = _executor(jobs=2, retries=1, keep_going=True)
        results = executor.run_specs(self.SPECS())
        assert results == [None, None]
        assert len(executor.failures) == 2
        assert {f.error for f in executor.failures} == {"BrokenProcessPool"}
        assert {f.attempts for f in executor.failures} == {2}

    def test_injected_timeout_in_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "timeout:case_idx=1;attempts=99")
        executor = _executor(jobs=2, keep_going=True)
        results = executor.run_specs(self.SPECS())
        assert results[0] is not None
        assert results[1] is None
        failure = next(f for f in executor.failures
                       if f.key == _spec(preset="complete_flush").cache_key())
        assert failure.timed_out is True

    def test_real_hang_expires_against_the_case_timeout(self, monkeypatch):
        # The one wall-clock test: a worker wedges (sleeps 4 s) and the
        # parent classifies it as CaseTimeout after ~1 s, abandons the pool
        # it cannot preempt, and still completes the healthy case.  The 4x
        # margin between the hang and the timeout keeps this robust on slow
        # machines without signals or flaky short sleeps.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "hang:case_idx=0;seconds=4")
        executor = _executor(jobs=2, timeout=1.0, keep_going=True)
        results = executor.run_specs(self.SPECS())
        assert results[0] is None
        assert results[1] is not None
        failure = next(f for f in executor.failures
                       if f.key == _spec().cache_key())
        assert failure.error == "CaseTimeout"
        assert failure.timed_out is True


#: Golden-restricted Figure 1 registry for the journal/resume tests.
PAIRS = SINGLE_THREAD_PAIRS[:2]
REGISTRY = {
    "figure1": ExperimentDef(
        "figure1",
        plan=lambda scale: fig1_flush_single.plan(scale, pairs=PAIRS),
        assemble=lambda scale, executor: fig1_flush_single.run(
            scale, pairs=PAIRS, executor=executor)),
}


def _manifest(scale=TINY):
    return build_manifest(scale=scale, experiments=REGISTRY)


class TestJournalResume:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("reference"))
        path = execute_shard(_manifest(), None, out, jobs=1, cache=_cache())
        return out, path

    def test_crash_then_resume_matches_uninterrupted_run(
            self, reference, tmp_path, monkeypatch):
        ref_dir, ref_path = reference
        manifest = _manifest()
        out = str(tmp_path / "crashed")

        # Case 5 fails permanently: serial execution completes (and
        # journals) cases 0-4, then aborts.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:case_idx=5;attempts=99")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        with pytest.raises(ExecutionError):
            execute_shard(manifest, None, out, jobs=1, cache=_cache())
        assert not os.path.exists(shard_artifact_path(out, None))
        with open(journal_path(out, None), encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1 + 5  # header + the five completed cases

        # Faults cleared, the resumed run replays the journal and simulates
        # only the remainder.
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        path = execute_shard(manifest, None, out, jobs=1, cache=_cache(),
                             resume=True)
        resumed = load_artifact(path)
        ref = load_artifact(ref_path)
        total = len(manifest.unique_cases())
        assert resumed["stats"]["simulated"] == total - 5
        assert ref["stats"]["simulated"] == total

        # Case payloads are bit-identical; only the execution-history stats
        # block differs.
        assert resumed["cases"] == ref["cases"]
        assert {k: v for k, v in resumed.items() if k != "stats"} \
            == {k: v for k, v in ref.items() if k != "stats"}

        # And therefore the merged figures are byte-identical files.
        ref_merged = str(tmp_path / "m-ref")
        res_merged = str(tmp_path / "m-res")
        merge_artifacts([ref_path], manifest, out_dir=ref_merged)
        merge_artifacts([path], manifest, out_dir=res_merged)
        for name in ("figure1.json", "figure1.txt"):
            with open(os.path.join(ref_merged, name), "rb") as handle:
                expected = handle.read()
            with open(os.path.join(res_merged, name), "rb") as handle:
                assert handle.read() == expected, f"{name} drifted"

    def test_foreign_journal_is_refused(self, reference, monkeypatch):
        ref_dir, _path = reference
        other = _manifest(scale=ExperimentScale())  # different manifest hash
        with pytest.raises(ValueError, match="different run"):
            execute_shard(other, None, ref_dir, jobs=1, cache=_cache(),
                          resume=True)

    def test_journal_with_unowned_case_is_refused(self, reference, tmp_path):
        ref_dir, _path = reference
        out = str(tmp_path / "forged")
        os.makedirs(out)
        with open(journal_path(ref_dir, None), encoding="utf-8") as handle:
            header_line, first_record = handle.read().splitlines()[:2]
        record = json.loads(first_record)
        record["key"] = "0" * 64
        with open(journal_path(out, None), "w", encoding="utf-8") as handle:
            handle.write(header_line + "\n")
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="does not own"):
            execute_shard(_manifest(), None, out, jobs=1, cache=_cache(),
                          resume=True)

    def test_torn_tail_is_salvaged(self, reference, tmp_path):
        ref_dir, _path = reference
        source = journal_path(ref_dir, None)
        with open(source, "rb") as handle:
            intact = handle.read()
        torn = str(tmp_path / "journal-0-of-1.jsonl")
        with open(torn, "wb") as handle:
            handle.write(intact + b'{"key": "torn-mid-app')
        from repro.experiments.pipeline import _journal_header

        header = _journal_header(_manifest(), None)
        whole, valid_whole = load_journal(source, header)
        salvaged, valid = load_journal(torn, header)
        assert valid == valid_whole == len(intact)
        assert salvaged.keys() == whole.keys()

    def test_corrupt_record_salvages_the_prefix(self, reference, tmp_path):
        ref_dir, _path = reference
        from repro.experiments.pipeline import _journal_header

        header = _journal_header(_manifest(), None)
        with open(journal_path(ref_dir, None), encoding="utf-8") as handle:
            lines = handle.read().splitlines(keepends=True)
        corrupt = str(tmp_path / "journal-0-of-1.jsonl")
        with open(corrupt, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:3])
            handle.write("not json at all\n")
            handle.writelines(lines[3:])
        salvaged, valid = load_journal(corrupt, header)
        assert len(salvaged) == 2  # the two records before the bad line
        assert valid == sum(len(line) for line in lines[:3])

    def test_missing_and_torn_header_journals_start_fresh(self, tmp_path):
        from repro.experiments.pipeline import _journal_header

        header = _journal_header(_manifest(), None)
        assert load_journal(str(tmp_path / "absent.jsonl"), header) == ({}, 0)
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(b'{"kind": "shard-jou')  # killed mid-header
        assert load_journal(str(torn), header) == ({}, 0)

    def test_keep_going_writes_a_failure_manifest(self, tmp_path,
                                                  monkeypatch):
        manifest = _manifest()
        out = str(tmp_path / "keepgoing")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:case_idx=0;attempts=99")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        path = execute_shard(manifest, None, out, jobs=1, cache=_cache(),
                             keep_going=True)
        fpath = failure_manifest_path(out, None)
        with open(fpath, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["failures"][0]["error"] == "InjectedCrash"
        # figure1 is case-based: it assembles at merge time, where the hole
        # fails the exactly-once check loudly — no caseless failures here.
        assert payload["failed_experiments"] == {}
        artifact = load_artifact(path)
        assert len(artifact["cases"]) == len(manifest.unique_cases()) - 1

        # A later clean run of the same shard clears the stale manifest —
        # the file's existence is the machine-readable failure signal.
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        execute_shard(manifest, None, out, jobs=1, cache=_cache(),
                      resume=True, keep_going=True)
        assert not os.path.exists(fpath)

    def test_caseless_assembly_failure_is_recorded(self, tmp_path):
        def _boom(scale, executor):
            raise RuntimeError("kaput")

        registry = dict(REGISTRY)
        registry["boom"] = ExperimentDef("boom", plan=lambda scale: [],
                                         assemble=_boom)
        manifest = build_manifest(scale=TINY, experiments=registry)
        out = str(tmp_path / "caseless")
        with pytest.raises(RuntimeError, match="kaput"):
            execute_shard(manifest, None, out, jobs=1, cache=_cache())
        path = execute_shard(manifest, None, out, jobs=1, cache=_cache(),
                             keep_going=True)
        with open(failure_manifest_path(out, None),
                  encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["failed_experiments"] == {"boom": "RuntimeError: kaput"}
        assert payload["failures"] == []
        # The healthy cases (and figure1's artifact entry set) are intact.
        artifact = load_artifact(path)
        assert len(artifact["cases"]) == len(manifest.unique_cases())
        assert "boom" not in artifact["experiment_results"]


class TestTornWritesAndSweep:
    def test_torn_write_leaves_truncated_doc_and_orphan_tmp(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "torn_write:path~victim.json")
        victim = str(tmp_path / "victim.json")
        atomic_write_json(victim, {"payload": list(range(64))})
        with pytest.raises(ValueError):
            json.loads(open(victim, encoding="utf-8").read())
        orphans = [name for name in os.listdir(str(tmp_path))
                   if ".tmp." in name]
        assert orphans == [f"victim.json.tmp.{os.getpid()}"]
        # Unmatched paths still write atomically.
        clean = str(tmp_path / "clean.json")
        atomic_write_json(clean, {"ok": True})
        assert json.loads(open(clean, encoding="utf-8").read()) == {"ok": True}

    def test_sweep_removes_dead_writers_tmp_and_keeps_live(self, tmp_path):
        live = tmp_path / f"entry.json.tmp.{os.getpid()}"
        live.write_text("{}")
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead = tmp_path / f"other.json.tmp.{proc.pid}"
        dead.write_text("{}")
        not_a_tmp = tmp_path / "entry.json"
        not_a_tmp.write_text("{}")
        removed = sweep_tmp_files(str(tmp_path))
        assert removed == [str(dead)]
        assert live.exists() and not_a_tmp.exists() and not dead.exists()

    def test_torn_disk_cache_entry_degrades_to_resimulation(
            self, tmp_path, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "torn_write:path~" + str(tmp_path))
        writer = SweepExecutor(jobs=1, cache=RunResultCache(
            directory=str(tmp_path), store=False), retries=0, backoff=0)
        expected = writer.run_spec(_spec())  # disk entry written torn

        monkeypatch.delenv("REPRO_FAULT_SPEC")
        fresh = RunResultCache(directory=str(tmp_path), store=False)
        with caplog.at_level("WARNING", "repro.experiments.executor"):
            assert fresh.get(_spec().cache_key()) is None
        assert "re-simulating" in caplog.text
        rerun = SweepExecutor(jobs=1, cache=fresh, retries=0, backoff=0)
        assert rerun.run_spec(_spec()).cycles == expected.cycles
        assert rerun.simulated == 1

    def test_torn_store_entry_is_quarantined_on_contact(
            self, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "torn_write:path~" + store_dir)
        store = ResultStore(store_dir)
        writer = SweepExecutor(jobs=1, cache=RunResultCache(
            directory=False, store=store), retries=0, backoff=0)
        writer.run_spec(_spec())  # store entry written torn

        monkeypatch.delenv("REPRO_FAULT_SPEC")
        fresh = ResultStore(store_dir)
        key = _spec().cache_key()
        assert fresh.get(key) is None  # corrupt entry moved aside, not served
        assert len(fresh.quarantined()) == 1
        # Self-heal: a clean put replaces the entry and the store serves it.
        healed = SweepExecutor(jobs=1, cache=RunResultCache(
            directory=False, store=fresh), retries=0, backoff=0)
        result = healed.run_spec(_spec())
        restored = ResultStore(store_dir).get(key)
        assert restored is not None and restored.cycles == result.cycles
