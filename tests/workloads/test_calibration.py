"""Tests for the synthetic-workload calibration checks."""

import pytest

from repro.workloads import get_profile
from repro.workloads.calibration import (
    CalibrationPoint,
    calibrate_benchmark,
    calibrate_suite,
)


class TestCalibrationPoint:
    def _point(self, measured_acc=0.92, hinted_acc=0.90, measured_btb=0.95,
               hinted_btb=0.97):
        return CalibrationPoint(
            benchmark="gcc", branches=1000,
            measured_direction_accuracy=measured_acc,
            hinted_direction_accuracy=hinted_acc,
            measured_btb_hit_rate=measured_btb,
            hinted_btb_hit_rate=hinted_btb,
            measured_conditional_ratio=0.12,
            syscalls_per_million_instructions=5.0)

    def test_errors_are_signed_differences(self):
        point = self._point()
        assert point.direction_accuracy_error == pytest.approx(0.02)
        assert point.btb_hit_rate_error == pytest.approx(-0.02)

    def test_within_tolerance(self):
        assert self._point().within(0.05)
        assert not self._point(measured_acc=0.70).within(0.05)


class TestCalibrateBenchmark:
    @pytest.fixture(scope="class")
    def gcc_point(self):
        # The default (TAGE) predictor is the one the hints are calibrated
        # against; a short run with a weaker predictor under-shoots them.
        return calibrate_benchmark("gcc", branches=6_000)

    def test_reports_requested_benchmark_and_length(self, gcc_point):
        assert gcc_point.benchmark == "gcc"
        assert gcc_point.branches == 6_000

    def test_measured_rates_are_probabilities(self, gcc_point):
        assert 0.5 <= gcc_point.measured_direction_accuracy <= 1.0
        assert 0.0 <= gcc_point.measured_btb_hit_rate <= 1.0
        assert gcc_point.measured_conditional_ratio > 0.0

    def test_hints_come_from_the_profile(self, gcc_point):
        profile = get_profile("gcc")
        assert gcc_point.hinted_direction_accuracy == profile.pht_accuracy_hint
        assert gcc_point.hinted_btb_hit_rate == profile.btb_hit_hint

    def test_direction_accuracy_tracks_hint_loosely(self, gcc_point):
        # The synthetic generator is calibrated to land near the hint; allow a
        # generous band since the measurement run here is short.
        assert abs(gcc_point.direction_accuracy_error) < 0.15

    def test_predictable_benchmark_beats_branchy_one(self):
        easy = calibrate_benchmark("libquantum", branches=6_000, predictor="gshare")
        hard = calibrate_benchmark("gobmk", branches=6_000, predictor="gshare")
        assert (easy.measured_direction_accuracy
                > hard.measured_direction_accuracy)


class TestCalibrateSuite:
    def test_subset_calibration(self):
        points = calibrate_suite(["gcc", "milc"], branches=3_000,
                                 predictor="gshare")
        assert [point.benchmark for point in points] == ["gcc", "milc"]
        assert all(0.0 <= point.measured_btb_hit_rate <= 1.0 for point in points)
