"""Differential parity for trace replay with embedded syscall markers.

A recorded trace line may carry ``syscall_after=1``: replay must inject the
kernel round-trip (privilege-switch pair + kernel cycles) *at that record*,
identically in the scalar reference loop, the batched fast engine, and the
numpy execution backend, on both core models.  These tests pin that contract
end-to-end and at the raw-storage level: a marker forces a rekey boundary in
the keyed isolation presets, so drifting by even one record would desync the
encoded predictor state.
"""

import dataclasses
import importlib.util

import pytest

from repro.core.registry import make_bpu
from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.cpu.core import SingleThreadCore
from repro.cpu.smt import SmtCore
from repro.experiments.runner import build_bpu
from repro.types import Privilege
from repro.workloads import TraceWorkload, make_workload, write_trace

_HAS_NUMPY = importlib.util.find_spec("numpy") is not None

#: Marker period chosen co-prime-ish with the batched engines' chunk size so
#: markers land in chunk interiors, at chunk edges, and mid-warm-up.
MARK_EVERY = 50

PRESETS = ["baseline", "noisy_xor_bp", "complete_flush"]


def _marker_records(n=1_200, every=MARK_EVERY, *, profile="gcc", seed=3):
    records = make_workload(profile, seed=seed).segment(n)
    return [dataclasses.replace(r, syscall_after=(i % every == every - 1))
            for i, r in enumerate(records)]


def _marker_trace(tmp_path, filename, **kwargs):
    path = str(tmp_path / filename)
    write_trace(_marker_records(**kwargs), path)
    return TraceWorkload.from_file(path)


def _result_snapshot(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "threads": {
            name: (t.cycles, t.instructions, t.branches,
                   t.conditional_branches, t.direction_mispredicts,
                   t.target_mispredicts, t.btb_lookups, t.btb_hits,
                   t.syscalls, t.context_switches)
            for name, t in result.threads.items()},
    }


def _raw_state(bpu):
    return ([list(table.rows()) for table in bpu.direction.tables()],
            bpu.btb.raw_sets())


class TestSingleThreadMarkerParity:
    def _run(self, trace, preset, *, engine, backend=None):
        config = fpga_prototype("gshare")
        bpu = make_bpu("gshare", preset, seed=11, btb_sets=config.btb_sets,
                       btb_ways=config.btb_ways)
        core = SingleThreadCore(config, bpu, [trace], time_scale=200.0,
                                backend=backend)
        return core.run(target_branches=900, warmup_branches=200,
                        mechanism_name=preset, engine=engine)

    @pytest.mark.parametrize("preset", PRESETS)
    def test_scalar_batched_bit_identical_with_markers(self, tmp_path,
                                                       preset):
        trace = _marker_trace(tmp_path, "marked.trace.gz")
        scalar = self._run(trace, preset, engine="scalar")
        batched = self._run(trace, preset, engine="batched")
        # The markers really fired: warm-up consumes 200 records, the
        # measured phase the next 900, so >= (900 // MARK_EVERY) syscalls.
        assert scalar.thread(trace.name).syscalls >= 900 // MARK_EVERY
        assert scalar.privilege_switches >= 2 * (900 // MARK_EVERY)
        assert _result_snapshot(batched) == _result_snapshot(scalar)

    @pytest.mark.skipif(not _HAS_NUMPY, reason="numpy backend unavailable")
    @pytest.mark.parametrize("preset", PRESETS)
    def test_numpy_backend_bit_identical_with_markers(self, tmp_path, preset):
        trace = _marker_trace(tmp_path, "marked.trace.gz")
        python = self._run(trace, preset, engine="batched", backend="python")
        vectorized = self._run(trace, preset, engine="batched",
                               backend="numpy")
        assert python.thread(trace.name).syscalls > 0
        assert _result_snapshot(vectorized) == _result_snapshot(python)

    def test_marker_free_trace_stays_marker_free(self, tmp_path):
        # A trace without markers (and the 0.0 syscall rate every trace
        # profile carries) must never synthesise privilege switches.
        path = str(tmp_path / "plain.trace.gz")
        write_trace(make_workload("gcc", seed=3).segment(1_200), path)
        trace = TraceWorkload.from_file(path)
        for engine in ("scalar", "batched"):
            result = self._run(trace, "noisy_xor_bp", engine=engine)
            assert result.privilege_switches == 0
            assert result.thread(trace.name).syscalls == 0


class TestSmtMarkerParity:
    def _run(self, traces, preset, *, engine, se_mode, backend=None):
        config = sunny_cove_smt("gshare")
        bpu = build_bpu(config, preset, seed=7)
        core = SmtCore(config, bpu, traces, time_scale=400.0,
                       se_mode=se_mode, backend=backend)
        return core.run(instructions=12_000, warmup_instructions=3_000,
                        mechanism_name=preset, engine=engine)

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("se_mode", [True, False])
    def test_scalar_batched_bit_identical_with_markers(self, tmp_path,
                                                       preset, se_mode):
        traces = [_marker_trace(tmp_path, f"t{i}.trace.gz", seed=3 + i)
                  for i in range(2)]
        scalar = self._run(traces, preset, engine="scalar", se_mode=se_mode)
        batched = self._run(traces, preset, engine="batched",
                            se_mode=se_mode)
        # Embedded markers are replayed *even in SE mode*: they are part of
        # the recorded workload, unlike the periodic syscall model SE mode
        # disables.
        assert scalar.privilege_switches > 0
        assert sum(t.syscalls for t in scalar.threads.values()) > 0
        assert _result_snapshot(batched) == _result_snapshot(scalar)

    @pytest.mark.skipif(not _HAS_NUMPY, reason="numpy backend unavailable")
    def test_numpy_backend_bit_identical_with_markers(self, tmp_path):
        traces = [_marker_trace(tmp_path, f"t{i}.trace.gz", seed=3 + i)
                  for i in range(2)]
        python = self._run(traces, "noisy_xor_bp", engine="batched",
                           se_mode=False, backend="python")
        vectorized = self._run(traces, "noisy_xor_bp", engine="batched",
                               se_mode=False, backend="numpy")
        assert _result_snapshot(vectorized) == _result_snapshot(python)


class TestMarkerBoundaryStorage:
    """Raw encoded storage compared at every marker-driven rekey boundary."""

    @pytest.mark.parametrize("preset", ["noisy_xor_bp", "complete_flush"])
    @pytest.mark.parametrize("predictor", ["gshare", "tage"])
    def test_fast_vs_generic_dispatch_at_marker_boundaries(self, preset,
                                                           predictor):
        records = _marker_records(n=900, every=37)
        fast = make_bpu(predictor, preset, seed=5)
        slow = make_bpu(predictor, preset, seed=5)
        slow.force_generic_dispatch()

        boundaries = 0
        for i, record in enumerate(records):
            out_fast = fast.execute_branch_fast(
                record.pc, record.taken, record.target, record.branch_type, 0)
            out_slow = slow.execute_branch_fast(
                record.pc, record.taken, record.target, record.branch_type, 0)
            assert out_fast == out_slow, f"outcome diverged at record {i}"
            if record.syscall_after:
                for bpu in (fast, slow):
                    bpu.notify_privilege_switch(0, Privilege.KERNEL)
                    bpu.notify_privilege_switch(0, Privilege.USER)
                boundaries += 1
                assert _raw_state(fast) == _raw_state(slow), \
                    f"raw storage diverged at marker after record {i}"
        assert boundaries > 10
        assert _raw_state(fast) == _raw_state(slow)
