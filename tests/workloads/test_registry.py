"""Tests for the workload registry, benchmark-set selectors and pair errors."""

import pytest

from repro.workloads import (
    SPEC_PROFILES,
    TraceWorkload,
    UnknownBenchSetError,
    UnknownPairSetError,
    WorkloadRegistry,
    case_names,
    get_pair,
    get_registry,
    make_workload,
    record_workload,
)
from repro.workloads.registry import TRACE_DIR_VAR


def _corpus(tmp_path, names=("alpha", "beta")):
    directory = tmp_path / "corpus"
    directory.mkdir()
    for i, name in enumerate(names):
        record_workload(make_workload("gcc", seed=i + 1), 60,
                        str(directory / f"{name}.trace.gz"))
    return str(directory)


class TestNamedSets:
    def test_int_fp_partition_the_synthetic_profiles(self):
        registry = WorkloadRegistry()
        sets = registry.sets()
        assert set(sets["int"]) | set(sets["fp"]) == set(SPEC_PROFILES)
        assert not set(sets["int"]) & set(sets["fp"])
        assert "gcc" in sets["int"]
        assert "milc" in sets["fp"]

    def test_trait_sets_follow_profile_characteristics(self):
        sets = WorkloadRegistry().sets()
        for name in sets["large_footprint"]:
            assert SPEC_PROFILES[name].static_conditional >= 2048
        for name in sets["indirect_heavy"]:
            profile = SPEC_PROFILES[name]
            assert (profile.static_indirect >= 40
                    or profile.indirect_fraction >= 0.04)
        assert "gcc" in sets["large_footprint"]
        assert "omnetpp" in sets["indirect_heavy"]

    def test_all_is_every_synthetic_profile(self):
        registry = WorkloadRegistry()
        assert set(registry.sets()["all"]) == set(SPEC_PROFILES)
        assert registry.sets()["traces"] == ()


class TestSelect:
    def test_union_is_duplicate_pruned_in_order(self):
        registry = WorkloadRegistry()
        union = [e.name for e in registry.select("int+large_footprint")]
        assert len(union) == len(set(union))
        # int members come first; large_footprint adds only its fp members.
        assert union[:len(registry.sets()["int"])] == list(
            registry.sets()["int"])
        assert "povray" in union  # large_footprint, fp suite

    def test_individual_workload_tokens(self):
        registry = WorkloadRegistry()
        assert [e.name for e in registry.select("gcc+mcf+gcc")] == [
            "gcc", "mcf"]

    def test_unknown_token_raises_named_error(self):
        registry = WorkloadRegistry()
        with pytest.raises(UnknownBenchSetError, match="nope"):
            registry.select("int+nope")
        with pytest.raises(ValueError, match="large_footprint"):
            # the error lists the valid sets, and is a ValueError for the CLI
            registry.select("nope")

    def test_empty_selector_rejected(self):
        with pytest.raises(UnknownBenchSetError):
            WorkloadRegistry().select("+")


class TestTraceCorpus:
    def test_corpus_scan_registers_trace_entries(self, tmp_path):
        registry = WorkloadRegistry(_corpus(tmp_path))
        assert registry.sets()["traces"] == ("trace:alpha", "trace:beta")
        entry = registry.entry("trace:alpha")
        assert entry.kind == "trace"
        assert entry.digest and len(entry.digest) == 64
        assert registry.digest("gcc") is None

    def test_make_workload_replays_trace_under_registry_name(self, tmp_path):
        registry = WorkloadRegistry(_corpus(tmp_path))
        workload = registry.make_workload("trace:alpha")
        assert isinstance(workload, TraceWorkload)
        assert workload.name == "trace:alpha"
        assert len(workload) == 60

    def test_digest_tracks_file_contents(self, tmp_path):
        corpus = _corpus(tmp_path, names=("alpha",))
        before = WorkloadRegistry(corpus).digest("trace:alpha")
        record_workload(make_workload("mcf", seed=9), 60,
                        corpus + "/alpha.trace.gz")
        after = WorkloadRegistry(corpus).digest("trace:alpha")
        assert before != after

    def test_ambiguous_labels_rejected(self, tmp_path):
        corpus = _corpus(tmp_path, names=("alpha",))
        record_workload(make_workload("mcf", seed=2), 10,
                        corpus + "/alpha.trace")
        with pytest.raises(ValueError, match="ambiguous"):
            WorkloadRegistry(corpus)

    def test_missing_corpus_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WorkloadRegistry(str(tmp_path / "nowhere"))

    def test_get_registry_honours_env(self, tmp_path, monkeypatch):
        corpus = _corpus(tmp_path, names=("alpha",))
        monkeypatch.setenv(TRACE_DIR_VAR, corpus)
        assert "trace:alpha" in get_registry().names()
        monkeypatch.delenv(TRACE_DIR_VAR)
        assert get_registry().sets()["traces"] == ()


class TestBenchManifestStability:
    """Trace-backed ``bench:`` manifests hash by corpus *content*."""

    def _hash(self, monkeypatch, corpus):
        from repro.experiments.manifest import build_manifest
        from repro.experiments.scaling import ExperimentScale

        monkeypatch.setenv(TRACE_DIR_VAR, corpus)
        manifest = build_manifest(keys=["bench:traces"],
                                  scale=ExperimentScale().scaled_by(0.05))
        return manifest.manifest_hash()

    def test_same_corpus_same_hash(self, tmp_path, monkeypatch):
        corpus = _corpus(tmp_path)
        assert self._hash(monkeypatch, corpus) == \
            self._hash(monkeypatch, corpus)

    def test_changed_trace_contents_change_hash(self, tmp_path, monkeypatch):
        corpus = _corpus(tmp_path)
        before = self._hash(monkeypatch, corpus)
        # Same file name, new contents: the digest (not the path/mtime)
        # must drive the manifest identity.
        record_workload(make_workload("mcf", seed=99), 60,
                        corpus + "/alpha.trace.gz")
        assert self._hash(monkeypatch, corpus) != before

    def test_workload_digest_feeds_cache_key(self, tmp_path, monkeypatch):
        import dataclasses

        from repro.experiments import bench_suite
        from repro.experiments.scaling import ExperimentScale

        monkeypatch.setenv(TRACE_DIR_VAR, _corpus(tmp_path, names=("alpha",)))
        specs = bench_suite.plan("traces", ExperimentScale().scaled_by(0.05))
        traced = [s for s in specs if s.workload_digest is not None]
        assert traced  # the trace-backed cases really carry digests
        spec = traced[0]
        undigested = dataclasses.replace(spec, workload_digest=None)
        assert spec.cache_key() != undigested.cache_key()


class TestUnknownPairSet:
    def test_case_names_names_the_valid_sets(self):
        with pytest.raises(UnknownPairSetError, match="smt2"):
            case_names("smt3")

    def test_get_pair_same_error(self):
        with pytest.raises(UnknownPairSetError, match="valid sets"):
            get_pair("case1", "quadx")
        # Backward compatible with historical `except KeyError` callers.
        assert issubclass(UnknownPairSetError, KeyError)

    def test_known_sets_unaffected(self):
        assert case_names("smt4") == [f"quad{i}" for i in range(1, 7)]
