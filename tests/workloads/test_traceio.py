"""Tests for branch-trace persistence and replay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import BranchType
from repro.workloads import (
    BranchRecord,
    TraceFormatError,
    TraceWorkload,
    make_workload,
    read_trace,
    record_workload,
    write_trace,
)
from repro.workloads.traceio import format_record, parse_record, trace_label

_record_strategy = st.builds(
    BranchRecord,
    pc=st.integers(min_value=0, max_value=(1 << 48) - 1),
    taken=st.booleans(),
    target=st.integers(min_value=0, max_value=(1 << 48) - 1),
    branch_type=st.sampled_from(list(BranchType)),
    gap=st.integers(min_value=0, max_value=500),
    syscall_after=st.booleans(),
)

#: Addresses whose hex spelling contains no letters — exactly the inputs the
#: old `int(x, 0)` parser silently read as *decimal* when unprefixed.
_letter_free_hex = st.text(alphabet="0123456789", min_size=1, max_size=12) \
    .map(lambda digits: int(digits, 16))

_letter_free_record_strategy = st.builds(
    BranchRecord,
    pc=_letter_free_hex,
    taken=st.booleans(),
    target=_letter_free_hex,
    branch_type=st.sampled_from(list(BranchType)),
    gap=st.integers(min_value=0, max_value=500),
    syscall_after=st.booleans(),
)


def _strip_0x(line):
    return ",".join(field[2:] if field.startswith("0x") else field
                    for field in line.split(","))


class TestRecordCodec:
    @given(_record_strategy)
    def test_format_parse_round_trip(self, record):
        assert parse_record(format_record(record)) == record

    @given(_record_strategy)
    def test_round_trip_without_0x_prefix(self, record):
        # The documented format makes the 0x prefix optional; stripping it
        # must never change what the line means.
        assert parse_record(_strip_0x(format_record(record))) == record

    @given(_letter_free_record_strategy)
    def test_round_trip_letter_free_hex(self, record):
        # Digit-only addresses are the regression surface: they are valid
        # in *both* bases, and the parser must pick hex per the format doc.
        assert parse_record(_strip_0x(format_record(record))) == record

    def test_minimal_line_uses_defaults(self):
        record = parse_record("0x400000,1,0x400040,cond")
        assert record.gap == 8
        assert record.syscall_after is False
        assert record.branch_type is BranchType.CONDITIONAL

    def test_bare_addresses_parse_as_hex(self):
        # `400510` is 0x400510 (never decimal 400510).
        record = parse_record("400510,0,400540,direct,3,1")
        assert record.pc == 0x400510
        assert record.target == 0x400540
        assert record.syscall_after is True

    def test_letter_bearing_bare_hex_accepted(self):
        # The old int(x, 0) parser rejected these outright.
        record = parse_record("4004f0,1,dead40,cond")
        assert record.pc == 0x4004F0
        assert record.target == 0xDEAD40

    @pytest.mark.parametrize("line", [
        "0o777,1,0x400040,cond",            # octal spelling rejected
        "0x400000,1,0o777,cond",            # octal target rejected
        "-400,1,0x400040,cond",             # signs are not hex digits
        "4_00,1,0x400040,cond",             # underscores are not hex digits
        "0x,1,0x400040,cond",               # empty digits
    ])
    def test_non_hex_address_spellings_raise_named_error(self, line):
        with pytest.raises(TraceFormatError, match="hexadecimal"):
            parse_record(line)

    @pytest.mark.parametrize("line", [
        "0x400000,1,0x400040",              # too few fields
        "0x400000,1,0x400040,weird",        # unknown type
        "notanumber,1,0x400040,cond",       # bad pc
        "0x400000,1,0x400040,cond,-3",      # negative gap
        "0x400000,1,0x400040,cond,x",       # bad gap
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(TraceFormatError):
            parse_record(line)

    def test_error_message_carries_line_number(self):
        with pytest.raises(TraceFormatError, match="line 7"):
            parse_record("0x1,1", lineno=7)


class TestTraceLabel:
    @pytest.mark.parametrize("path,label", [
        ("gcc.trace.gz", "gcc"),
        ("corpus/gcc.trace.gz", "gcc"),
        ("trace.v2.gz", "trace.v2"),        # interior dot is part of the name
        ("a/b/run.txt", "run"),
        ("traces\\gcc.trace", "gcc"),       # Windows separators
        ("C:\\corpus\\milc.trace.gz", "milc"),
        ("plain", "plain"),
        (".gz", ".gz"),                     # never strip down to nothing
    ])
    def test_label_derivation(self, path, label):
        assert trace_label(path) == label


class TestTraceFiles:
    def test_write_read_round_trip(self, tmp_path):
        records = [BranchRecord(pc=0x1000 + 4 * i, taken=i % 2 == 0,
                                target=0x2000 + i, gap=i % 5)
                   for i in range(50)]
        path = str(tmp_path / "trace.txt")
        assert write_trace(records, path, header="unit test") == 50
        assert read_trace(path) == records

    def test_gzip_round_trip(self, tmp_path):
        records = [BranchRecord(pc=0x1000, taken=True, target=0x2000)] * 10
        path = str(tmp_path / "trace.txt.gz")
        write_trace(records, path)
        assert read_trace(path) == records

    def test_read_limit(self, tmp_path):
        records = [BranchRecord(pc=0x1000 + i, taken=True, target=0x2000)
                   for i in range(30)]
        path = str(tmp_path / "trace.txt")
        write_trace(records, path)
        assert len(read_trace(path, limit=7)) == 7

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0x10,1,0x20,cond\n# tail comment\n")
        assert len(read_trace(str(path))) == 1

    def test_malformed_file_raises_with_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0x10,1,0x20,cond\n0x10,1\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(str(path))


class TestTraceWorkload:
    def _records(self, n=20):
        return [BranchRecord(pc=0x1000 + 4 * i, taken=True, target=0x2000 + i)
                for i in range(n)]

    def test_requires_records(self):
        with pytest.raises(ValueError):
            TraceWorkload([])

    def test_replay_is_cyclic(self):
        workload = TraceWorkload(self._records(5), "unit")
        segment = workload.segment(12)
        assert [r.pc for r in segment[:5]] == [r.pc for r in segment[5:10]]

    def test_seed_offset_rotates_start(self):
        workload = TraceWorkload(self._records(10), "unit")
        first = workload.segment(3, seed_offset=0)
        rotated = workload.segment(3, seed_offset=1)
        assert [r.pc for r in first] != [r.pc for r in rotated]

    def test_stats_summarise_one_pass(self):
        workload = TraceWorkload(self._records(8), "unit")
        stats = workload.stats()
        assert stats.branches == 8
        assert stats.distinct_pcs == 8

    def test_len_and_name(self):
        workload = TraceWorkload(self._records(8), "myname")
        assert len(workload) == 8
        assert workload.name == "myname"

    def test_from_file_and_record_workload(self, tmp_path):
        source = make_workload("gcc", seed=1)
        path = str(tmp_path / "gcc.trace.gz")
        written = record_workload(source, 200, path)
        assert written == 200
        replay = TraceWorkload.from_file(path)
        assert len(replay) == 200
        assert replay.name == "gcc"
        # The replayed records must match what the generator produced.
        assert replay.segment(200) == source.segment(200)

    def test_from_file_custom_name_and_limit(self, tmp_path):
        source = make_workload("milc", seed=2)
        path = str(tmp_path / "milc.trace")
        record_workload(source, 100, path)
        replay = TraceWorkload.from_file(path, name="custom", limit=40)
        assert replay.name == "custom"
        assert len(replay) == 40

    def test_syscall_rate_exposed_via_profile(self):
        workload = TraceWorkload(self._records(), "unit",
                                 syscall_rate_per_million_cycles=3.5)
        assert workload.profile.privilege_switches_per_million_cycles == 3.5


class TestTraceReplayOnCore:
    def test_trace_workload_drives_single_thread_core(self, tmp_path):
        from repro.core import make_bpu
        from repro.cpu import SingleThreadCore, fpga_prototype

        source = make_workload("hmmer", seed=3)
        path = str(tmp_path / "hmmer.trace.gz")
        record_workload(source, 2_000, path)
        trace = TraceWorkload.from_file(path)
        config = fpga_prototype("gshare")
        bpu = make_bpu("gshare", "noisy_xor_bp", btb_sets=config.btb_sets,
                       btb_ways=config.btb_ways)
        core = SingleThreadCore(config, bpu, [trace], time_scale=200.0)
        result = core.run(target_branches=1_500, mechanism_name="noisy_xor_bp")
        stats = result.thread(trace.name)
        assert stats.branches == 1_500
        assert stats.cycles > 0
        assert 0.0 <= stats.direction_accuracy <= 1.0
