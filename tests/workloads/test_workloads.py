"""Tests for the synthetic workload substrate (profiles, generator, pairs, traces)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.types import BranchType
from repro.workloads.generator import SyntheticWorkload, make_workload
from repro.workloads.pairs import (
    SINGLE_THREAD_PAIRS,
    SMT2_PAIRS,
    SMT4_QUADS,
    case_names,
    get_pair,
    make_pair_workloads,
)
from repro.workloads.spec_profiles import SPEC_PROFILES, get_profile, profile_names
from repro.workloads.trace import BranchRecord, collect_stats


class TestProfiles:
    def test_every_table3_benchmark_has_a_profile(self):
        needed = set()
        for pair in SINGLE_THREAD_PAIRS + SMT2_PAIRS:
            needed.update(pair.benchmarks)
        assert needed <= set(SPEC_PROFILES)

    def test_profiles_have_consistent_fractions(self):
        for profile in SPEC_PROFILES.values():
            total = (profile.loop_fraction + profile.biased_fraction
                     + profile.pattern_fraction + profile.random_fraction)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_branch_ratio_is_sane(self):
        for profile in SPEC_PROFILES.values():
            assert 0.01 <= profile.branch_ratio <= 0.30

    def test_get_profile_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_profile_names_sorted(self):
        names = profile_names()
        assert names == sorted(names)

    def test_paper_specific_characteristics(self):
        # gobmk: big branch working set; libquantum: tiny and predictable.
        assert get_profile("gobmk").static_conditional > 4 * get_profile("libquantum").static_conditional
        assert get_profile("libquantum").pht_accuracy_hint > get_profile("gobmk").pht_accuracy_hint
        # povray has the highest syscall rate (case2 in Table 4).
        rates = {n: p.privilege_switches_per_million_cycles
                 for n, p in SPEC_PROFILES.items()}
        assert rates["povray"] == max(rates.values())

    def test_table4_pair_rates_match_paper_approximately(self):
        expected = {"case1": 4.9, "case2": 7.0, "case6": 1.6, "case11": 3.5}
        for case, value in expected.items():
            pair = get_pair(case, "single")
            rates = [get_profile(b).privilege_switches_per_million_cycles
                     for b in pair.benchmarks]
            assert sum(rates) / 2 == pytest.approx(value, rel=0.15)


class TestPairs:
    def test_twelve_cases_each(self):
        assert len(SINGLE_THREAD_PAIRS) == 12
        assert len(SMT2_PAIRS) == 12
        assert len(SMT4_QUADS) == 6

    def test_case_names(self):
        assert case_names("single") == [f"case{i}" for i in range(1, 13)]

    def test_table3_contents(self):
        assert get_pair("case1", "single").benchmarks == ("gcc", "calculix")
        assert get_pair("case6", "single").benchmarks == ("gobmk", "libquantum")
        assert get_pair("case1", "smt2").benchmarks == ("zeusmp", "lbm")
        assert get_pair("case12", "smt2").benchmarks == ("zeusmp", "gobmk")

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            get_pair("case99", "single")

    def test_quads_have_four_benchmarks(self):
        for quad in SMT4_QUADS:
            assert len(quad.benchmarks) == 4

    def test_pair_helpers(self):
        pair = get_pair("case1", "single")
        assert pair.target == "gcc"
        assert pair.background == ("calculix",)
        assert pair.label() == "gcc+calculix"

    def test_make_pair_workloads(self):
        workloads = make_pair_workloads(get_pair("case1", "single"), seed=4)
        assert [w.name for w in workloads] == ["gcc", "calculix"]


class TestBranchRecord:
    def test_instructions_includes_gap(self):
        record = BranchRecord(0x1000, True, 0x2000, gap=9)
        assert record.instructions == 10

    def test_collect_stats(self):
        records = [
            BranchRecord(0x1000, True, 0x2000, BranchType.CONDITIONAL, gap=4),
            BranchRecord(0x1004, False, 0x2000, BranchType.CONDITIONAL, gap=4),
            BranchRecord(0x2000, True, 0x3000, BranchType.CALL, gap=4),
            BranchRecord(0x3000, True, 0x2004, BranchType.RETURN, gap=4,
                         syscall_after=True),
            BranchRecord(0x4000, True, 0x5000, BranchType.INDIRECT, gap=4),
        ]
        stats = collect_stats(records)
        assert stats.branches == 5
        assert stats.conditional == 2
        assert stats.taken_conditional == 1
        assert stats.calls == 1 and stats.returns == 1 and stats.indirect == 1
        assert stats.syscalls == 1
        assert stats.instructions == 25
        assert stats.distinct_pcs == 5
        assert stats.taken_ratio == pytest.approx(0.5)


class TestGenerator:
    def test_trace_is_deterministic_for_a_seed(self):
        a = make_workload("gcc", seed=3).segment(500)
        b = make_workload("gcc", seed=3).segment(500)
        assert [(r.pc, r.taken) for r in a] == [(r.pc, r.taken) for r in b]

    def test_different_seeds_differ(self):
        a = make_workload("gcc", seed=3).segment(500)
        b = make_workload("gcc", seed=4).segment(500)
        assert [(r.pc, r.taken) for r in a] != [(r.pc, r.taken) for r in b]

    def test_seed_offset_changes_interleaving(self):
        workload = make_workload("gcc", seed=3)
        a = workload.segment(300, seed_offset=0)
        b = workload.segment(300, seed_offset=1)
        assert [(r.pc, r.taken) for r in a] != [(r.pc, r.taken) for r in b]

    def test_branch_ratio_roughly_matches_profile(self):
        workload = make_workload("gcc", seed=1)
        stats = collect_stats(workload.segment(4000))
        profile = get_profile("gcc")
        measured = stats.branches / stats.instructions
        assert measured == pytest.approx(profile.branch_ratio, rel=0.35)

    def test_distinct_pcs_bounded_by_static_population(self):
        workload = make_workload("libquantum", seed=1)
        stats = collect_stats(workload.segment(3000))
        assert stats.distinct_pcs <= (workload.profile.static_conditional
                                      + workload.profile.static_calls * 2
                                      + workload.profile.static_indirect)

    def test_working_set_size_scales_with_code_size(self):
        assert make_workload("gobmk").working_set_size() > make_workload("lbm").working_set_size()

    def test_conditional_records_dominate(self):
        stats = collect_stats(make_workload("hmmer", seed=1).segment(2000))
        assert stats.conditional > stats.branches * 0.7

    def test_call_and_return_are_paired(self):
        stats = collect_stats(make_workload("dealII", seed=1).segment(4000))
        assert stats.calls == pytest.approx(stats.returns, abs=1)

    def test_indirect_branches_present_for_indirect_heavy_benchmarks(self):
        stats = collect_stats(make_workload("perlbench", seed=1).segment(4000))
        assert stats.indirect > 0

    def test_loop_heavy_benchmark_is_mostly_taken(self):
        stats = collect_stats(make_workload("lbm", seed=1).segment(3000))
        assert stats.taken_ratio > 0.85

    def test_profile_object_accepted_directly(self):
        profile = get_profile("milc")
        workload = SyntheticWorkload(profile, seed=2)
        assert workload.name == "milc"

    def test_records_stream_is_endless(self):
        workload = make_workload("milc", seed=2)
        stream = workload.records()
        first_10k = list(itertools.islice(stream, 10_000))
        assert len(first_10k) == 10_000

    @given(st.sampled_from(sorted(SPEC_PROFILES)), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_every_profile_generates_valid_records(self, name, seed):
        workload = make_workload(name, seed=seed)
        for record in workload.segment(200):
            assert record.pc % 4 == 0 or record.pc >= 0
            assert isinstance(record.taken, bool)
            assert record.gap >= 0
            assert isinstance(record.branch_type, BranchType)
