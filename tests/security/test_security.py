"""Tests for the security classification (Table 1) machinery."""

import pytest

from repro.security import (
    PAPER_TABLE1,
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    Verdict,
    btb_tag_hit_probability,
    build_security_table,
    classify_success_rate,
    malicious_redirect_probability,
)


class TestClassification:
    def test_chance_level_success_is_defend(self):
        assert classify_success_rate(0.5, 0.5) is Verdict.DEFEND

    def test_perfect_attack_is_no_protection(self):
        assert classify_success_rate(1.0, 0.5) is Verdict.NO_PROTECTION

    def test_partial_advantage_is_mitigate(self):
        assert classify_success_rate(0.7, 0.5) is Verdict.MITIGATE

    def test_sub_chance_success_is_defend(self):
        assert classify_success_rate(0.3, 0.5) is Verdict.DEFEND

    def test_zero_chance_attack(self):
        assert classify_success_rate(0.97, 0.0) is Verdict.NO_PROTECTION
        assert classify_success_rate(0.01, 0.0) is Verdict.DEFEND

    def test_invalid_chance_rejected(self):
        with pytest.raises(ValueError):
            classify_success_rate(0.5, 1.0)

    def test_verdict_string(self):
        assert str(Verdict.NO_PROTECTION) == "No Protection"


class TestAnalyticBounds:
    def test_tag_hit_probability(self):
        assert btb_tag_hit_probability(16) == pytest.approx(2 ** -16)

    def test_redirect_probability_combines_tag_and_target(self):
        assert malicious_redirect_probability(16, 32) == pytest.approx(2 ** -48)

    def test_zero_bits_edge_case(self):
        assert btb_tag_hit_probability(0) == 1.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            btb_tag_hit_probability(-1)
        with pytest.raises(ValueError):
            malicious_redirect_probability(4, -1)


class TestPaperTable:
    def test_every_row_has_paper_verdicts(self):
        for structure, label, _ in TABLE1_ROWS:
            assert (structure, label) in PAPER_TABLE1
            assert set(PAPER_TABLE1[(structure, label)]) == set(TABLE1_COLUMNS)

    def test_paper_verdicts_use_known_vocabulary(self):
        for cells in PAPER_TABLE1.values():
            for verdict in cells.values():
                assert verdict in ("Defend", "Mitigate", "No Protection")


class TestBuildSecurityTable:
    @pytest.fixture(scope="class")
    def table(self):
        # Small iteration count: the verdicts are far from the thresholds.
        return build_security_table(iterations=60)

    def test_has_all_rows_and_columns(self, table):
        assert len(table) == len(TABLE1_ROWS)
        for row in table:
            assert set(row.cells) == set(TABLE1_COLUMNS)

    def test_single_thread_reuse_cells_all_defend(self, table):
        for row in table:
            cell = row.cells[("single", "reuse")]
            assert cell.verdict is Verdict.DEFEND, row.label

    def test_noisy_xor_btb_is_the_only_btb_row_mitigating_smt_contention(self, table):
        verdicts = {row.label: row.cells[("smt", "contention")].verdict
                    for row in table if row.structure == "btb"}
        assert verdicts["Noisy-XOR-BTB"] in (Verdict.MITIGATE, Verdict.DEFEND)
        assert verdicts["Complete Flush"] is Verdict.NO_PROTECTION
        assert verdicts["XOR-BTB"] is Verdict.NO_PROTECTION

    def test_complete_flush_fails_reuse_on_smt(self, table):
        for row in table:
            if row.label == "Complete Flush":
                assert row.cells[("smt", "reuse")].verdict is Verdict.NO_PROTECTION

    def test_agreement_with_paper_is_high(self, table):
        total = 0
        matches = 0
        for row in table:
            for cell in row.cells.values():
                total += 1
                matches += int(cell.matches_paper)
        assert matches / total >= 0.7

    def test_cells_record_best_attack(self, table):
        for row in table:
            cell = row.cells[("single", "reuse")]
            assert cell.best_attack is not None
            assert 0.0 <= cell.success_rate <= 1.0
