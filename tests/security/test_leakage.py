"""Tests for the information-theoretic leakage measurements."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security.leakage import (
    LeakageEstimate,
    binary_entropy,
    leakage_bandwidth,
    leakage_report,
    measure_btb_occupancy_leakage,
    measure_direction_leakage,
    mutual_information,
)


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_and_symmetric(self, p):
        value = binary_entropy(p)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(binary_entropy(1.0 - p), abs=1e-9)


class TestMutualInformation:
    def test_empty_counts(self):
        assert mutual_information([[0, 0], [0, 0]]) == 0.0

    def test_independent_variables_leak_nothing(self):
        assert mutual_information([[25, 25], [25, 25]]) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_correlation_leaks_one_bit(self):
        assert mutual_information([[50, 0], [0, 50]]) == pytest.approx(1.0)

    def test_perfect_anticorrelation_leaks_one_bit(self):
        assert mutual_information([[0, 50], [50, 0]]) == pytest.approx(1.0)

    def test_partial_correlation_between_zero_and_one(self):
        value = mutual_information([[40, 10], [10, 40]])
        assert 0.0 < value < 1.0

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=4, max_size=4))
    def test_never_negative_never_above_one_bit(self, counts):
        table = [[counts[0], counts[1]], [counts[2], counts[3]]]
        value = mutual_information(table)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=4, max_size=4))
    def test_bounded_by_secret_entropy(self, counts):
        table = [[counts[0], counts[1]], [counts[2], counts[3]]]
        total = sum(counts)
        if total == 0:
            return
        p_secret = (counts[0] + counts[1]) / total
        assert mutual_information(table) <= binary_entropy(p_secret) + 1e-9


class TestLeakageEstimate:
    def test_guess_accuracy_of_perfect_channel(self):
        estimate = LeakageEstimate("pht_direction", "baseline", False, 100,
                                   joint_counts=[[50, 0], [0, 50]])
        assert estimate.guess_accuracy == pytest.approx(1.0)

    def test_guess_accuracy_of_useless_channel_is_half(self):
        estimate = LeakageEstimate("pht_direction", "noisy_xor_bp", False, 100,
                                   joint_counts=[[25, 25], [25, 25]])
        assert estimate.guess_accuracy == pytest.approx(0.5)

    def test_observation_rate(self):
        estimate = LeakageEstimate("btb_occupancy", "baseline", False, 100,
                                   joint_counts=[[40, 10], [20, 30]])
        assert estimate.observation_rate() == pytest.approx(0.4)

    def test_empty_estimate_defaults(self):
        estimate = LeakageEstimate("pht_direction", "baseline", False, 0)
        assert estimate.guess_accuracy == 0.5
        assert estimate.mutual_information_bits == 0.0
        assert estimate.observation_rate() == 0.0


class TestDirectionChannel:
    def test_baseline_leaks_close_to_one_bit(self):
        estimate = measure_direction_leakage("baseline", trials=150, seed=1)
        assert estimate.mutual_information_bits > 0.6
        assert estimate.guess_accuracy > 0.9

    def test_noisy_xor_reduces_leakage_to_near_zero(self):
        estimate = measure_direction_leakage("noisy_xor_bp", trials=150, seed=1)
        assert estimate.mutual_information_bits < 0.1
        assert estimate.guess_accuracy < 0.7

    def test_complete_flush_defends_single_threaded(self):
        estimate = measure_direction_leakage("complete_flush", trials=150, seed=1)
        assert estimate.mutual_information_bits < 0.1

    def test_estimate_metadata(self):
        estimate = measure_direction_leakage("baseline", trials=10, seed=1)
        assert estimate.channel == "pht_direction"
        assert estimate.mechanism == "baseline"
        assert estimate.trials == 10
        assert sum(sum(row) for row in estimate.joint_counts) == 10


class TestBtbOccupancyChannel:
    def test_baseline_leaks(self):
        estimate = measure_btb_occupancy_leakage("baseline", trials=150, seed=2)
        assert estimate.mutual_information_bits > 0.3

    def test_noisy_xor_btb_defends(self):
        estimate = measure_btb_occupancy_leakage("noisy_xor_bp", trials=150, seed=2)
        assert estimate.mutual_information_bits < 0.1

    def test_channel_label(self):
        estimate = measure_btb_occupancy_leakage("baseline", trials=10, seed=2)
        assert estimate.channel == "btb_occupancy"
        assert estimate.probes_per_trial >= 2.0


class TestBandwidthAndReport:
    def test_bandwidth_scales_with_mutual_information(self):
        strong = LeakageEstimate("pht_direction", "baseline", False, 100,
                                 joint_counts=[[50, 0], [0, 50]])
        weak = LeakageEstimate("pht_direction", "noisy_xor_bp", False, 100,
                               joint_counts=[[25, 25], [25, 25]])
        assert leakage_bandwidth(strong) > leakage_bandwidth(weak)

    def test_bandwidth_decreases_with_probe_cost(self):
        estimate = LeakageEstimate("pht_direction", "baseline", False, 100,
                                   joint_counts=[[50, 0], [0, 50]],
                                   probes_per_trial=1.0)
        expensive = LeakageEstimate("pht_direction", "baseline", False, 100,
                                    joint_counts=[[50, 0], [0, 50]],
                                    probes_per_trial=4096.0)
        assert leakage_bandwidth(expensive) < leakage_bandwidth(estimate)

    def test_bandwidth_is_finite_and_positive_units(self):
        estimate = LeakageEstimate("pht_direction", "baseline", False, 10,
                                   joint_counts=[[5, 0], [0, 5]])
        value = leakage_bandwidth(estimate, cycles_per_second=2.0e9)
        assert math.isfinite(value)
        assert value > 0.0

    def test_report_covers_both_channels(self):
        report = leakage_report(["baseline", "noisy_xor_bp"], trials=60, seed=5)
        assert set(report) == {"baseline", "noisy_xor_bp"}
        for channels in report.values():
            assert set(channels) == {"pht_direction", "btb_occupancy"}

    def test_report_orders_mechanisms_as_expected(self):
        report = leakage_report(["baseline", "noisy_xor_bp"], trials=120, seed=5)
        assert (report["baseline"]["pht_direction"].mutual_information_bits
                > report["noisy_xor_bp"]["pht_direction"].mutual_information_bits)
