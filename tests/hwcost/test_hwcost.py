"""Tests for the analytic hardware cost model (Table 5)."""

import pytest

from repro.hwcost import (
    TSMC28_LIKE,
    CostEstimate,
    TechnologyParameters,
    btb_cost,
    sram_access_ps,
    sram_area_um2,
    tage_pht_cost,
)


class TestSramModel:
    def test_area_is_linear_in_bits(self):
        assert sram_area_um2(2000) == pytest.approx(2 * sram_area_um2(1000))

    def test_access_time_grows_with_rows(self):
        assert sram_access_ps(1024) > sram_access_ps(128)

    def test_small_macros_share_base_access_time(self):
        assert sram_access_ps(64) == pytest.approx(sram_access_ps(128))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            sram_area_um2(-1)
        with pytest.raises(ValueError):
            sram_access_ps(0)


class TestCostEstimate:
    def test_overhead_fractions(self):
        estimate = CostEstimate("x", base_area_um2=1000, added_area_um2=10,
                                base_delay_ps=500, added_delay_ps=5)
        assert estimate.area_overhead == pytest.approx(0.01)
        assert estimate.timing_overhead == pytest.approx(0.01)

    def test_zero_base_is_safe(self):
        estimate = CostEstimate("x", 0, 1, 0, 1)
        assert estimate.area_overhead == 0.0
        assert estimate.timing_overhead == 0.0


class TestBtbCost:
    def test_overheads_are_small(self):
        for entries in (128, 256, 512):
            estimate = btb_cost(entries)
            assert 0.0 < estimate.timing_overhead < 0.05
            assert 0.0 < estimate.area_overhead < 0.02

    def test_timing_overhead_grows_with_size(self):
        """Table 5 trend: 0.70% -> 0.94% -> 1.46%."""
        t128 = btb_cost(128).timing_overhead
        t256 = btb_cost(256).timing_overhead
        t512 = btb_cost(512).timing_overhead
        assert t128 < t256 < t512

    def test_area_overhead_shrinks_with_size(self):
        """Table 5 trend: 0.24% -> 0.15% -> 0.13%."""
        a128 = btb_cost(128).area_overhead
        a256 = btb_cost(256).area_overhead
        a512 = btb_cost(512).area_overhead
        assert a128 > a256 > a512

    def test_close_to_paper_values(self):
        assert 100 * btb_cost(256).timing_overhead == pytest.approx(0.94, abs=0.3)
        assert 100 * btb_cost(512).timing_overhead == pytest.approx(1.46, abs=0.4)

    def test_structure_label(self):
        assert btb_cost(256).structure == "BTB 2w256"


class TestTagePhtCost:
    def test_overheads_are_small(self):
        for entries in (1024, 2048, 4096):
            estimate = tage_pht_cost(entries)
            assert 0.0 < estimate.timing_overhead < 0.05
            assert 0.0 < estimate.area_overhead < 0.01

    def test_timing_roughly_flat_with_entries(self):
        """Table 5: about 2% for 1K/2K/4K entries per table."""
        values = [tage_pht_cost(n).timing_overhead for n in (1024, 2048, 4096)]
        assert max(values) - min(values) < 0.005
        assert all(0.015 < v < 0.03 for v in values)

    def test_area_overhead_shrinks_with_size(self):
        a1k = tage_pht_cost(1024).area_overhead
        a4k = tage_pht_cost(4096).area_overhead
        assert a1k > a4k

    def test_custom_technology_parameters(self):
        slow_tech = TechnologyParameters(cycle_time_ps=1000.0)
        default = tage_pht_cost(1024, tech=TSMC28_LIKE)
        slow = tage_pht_cost(1024, tech=slow_tech)
        assert slow.timing_overhead < default.timing_overhead
