"""Tests for the per-access energy overhead model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hwcost import EnergyEstimate, btb_energy, pht_energy


class TestEnergyEstimate:
    def test_total_is_sum(self):
        estimate = EnergyEstimate("x", baseline_fj=100.0, added_fj=5.0)
        assert estimate.total_fj == pytest.approx(105.0)
        assert estimate.energy_overhead == pytest.approx(0.05)

    def test_zero_baseline_reports_zero_overhead(self):
        estimate = EnergyEstimate("x", baseline_fj=0.0, added_fj=5.0)
        assert estimate.energy_overhead == 0.0


class TestBtbEnergy:
    def test_paper_configuration_overhead_is_small(self):
        estimate = btb_energy(256, 2)
        assert 0.0 < estimate.energy_overhead < 0.2

    def test_overhead_shrinks_little_with_entries(self):
        """The XOR network scales with width, not depth, so the relative
        overhead barely moves as the array grows."""
        small = btb_energy(128, 2)
        large = btb_energy(2048, 2)
        assert abs(small.energy_overhead - large.energy_overhead) < 0.05

    def test_wider_entries_cost_more_absolute_energy(self):
        narrow = btb_energy(256, 2, target_bits=32)
        wide = btb_energy(256, 2, target_bits=48)
        assert wide.baseline_fj > narrow.baseline_fj
        assert wide.added_fj > narrow.added_fj

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            btb_energy(0, 2)
        with pytest.raises(ValueError):
            btb_energy(256, 0)

    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=8))
    def test_estimates_always_positive(self, entries, ways):
        estimate = btb_energy(entries, ways)
        assert estimate.baseline_fj > 0
        assert estimate.added_fj > 0


class TestPhtEnergy:
    def test_paper_configuration_overhead_is_small(self):
        estimate = pht_energy(4096, 6)
        assert 0.0 < estimate.energy_overhead < 0.2

    def test_more_tables_scale_baseline_and_added_together(self):
        few = pht_energy(1024, 2)
        many = pht_energy(1024, 12)
        assert many.baseline_fj > few.baseline_fj
        assert many.added_fj > few.added_fj
        # The relative overhead stays in the same small band.
        assert abs(many.energy_overhead - few.energy_overhead) < 0.1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            pht_energy(0)
        with pytest.raises(ValueError):
            pht_energy(1024, 0)

    def test_structure_labels(self):
        assert "BTB 2w256" == btb_energy(256, 2).structure
        assert "TAGE PHT 1024x6" == pht_energy(1024, 6).structure
