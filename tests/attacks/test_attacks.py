"""Tests for the attack framework: primitives, individual attacks, harness."""

import pytest

from repro.attacks import (
    ALL_ATTACKS,
    AttackEnvironment,
    AttackResult,
    AttackScenario,
    TimingChannel,
    make_attack,
    run_attack,
    run_attack_matrix,
    summarise,
)
from repro.core.registry import make_bpu
from repro.types import BranchType


class TestTimingChannel:
    def test_noiseless_channel_is_faithful(self):
        channel = TimingChannel(false_positive=0.0, false_negative=0.0)
        assert channel.observe(True) is True
        assert channel.observe(False) is False

    def test_noise_rates_are_approximately_respected(self):
        channel = TimingChannel(false_positive=0.1, false_negative=0.2, seed=1)
        fp = sum(channel.observe(False) for _ in range(3000)) / 3000
        fn = sum(not channel.observe(True) for _ in range(3000)) / 3000
        assert fp == pytest.approx(0.1, abs=0.03)
        assert fn == pytest.approx(0.2, abs=0.03)


class TestAttackEnvironment:
    def test_single_thread_handoff_triggers_context_switch(self):
        bpu = make_bpu("bimodal", "baseline")
        env = AttackEnvironment(bpu, smt=False)
        env.attacker_branch(0x4000, True, 0x5000)
        env.victim_branch(0x4000, True, 0x5000)
        env.attacker_branch(0x4000, True, 0x5000)
        assert env.context_switches == 2

    def test_smt_mode_never_switches(self):
        bpu = make_bpu("bimodal", "baseline")
        env = AttackEnvironment(bpu, smt=True)
        env.attacker_branch(0x4000, True, 0x5000)
        env.victim_branch(0x4000, True, 0x5000)
        assert env.context_switches == 0
        assert env.attacker_thread == 1 and env.victim_thread == 0

    def test_repeated_handoff_to_same_party_is_free(self):
        bpu = make_bpu("bimodal", "baseline")
        env = AttackEnvironment(bpu, smt=False)
        env.attacker_branch(0x4000, True, 0x5000)
        env.attacker_branch(0x4000, True, 0x5000)
        assert env.context_switches == 0

    def test_victim_syscall_rotates_keys(self):
        bpu = make_bpu("bimodal", "xor_bp")
        env = AttackEnvironment(bpu, smt=False)
        generation_before = bpu.isolation.key_manager.generation(0)
        env.victim_syscall()
        assert bpu.isolation.key_manager.generation(0) > generation_before

    def test_probe_helpers(self):
        bpu = make_bpu("bimodal", "baseline")
        env = AttackEnvironment(bpu, smt=False,
                                channel=TimingChannel(0.0, 0.0))
        env.attacker_branch(0x4000, True, 0x5000, BranchType.DIRECT)
        assert env.attacker_btb_probe(0x4000) is True
        assert env.attacker_btb_predicted_target(0x4000) == 0x5000
        assert env.attacker_btb_probe(0x8888) is False


class TestHarness:
    def test_all_attacks_construct(self):
        for name in ALL_ATTACKS:
            assert make_attack(name).name == name

    def test_unknown_attack_rejected(self):
        with pytest.raises(KeyError):
            make_attack("rowhammer")

    def test_scenario_builds_environment(self):
        env = AttackScenario(mechanism="noisy_xor_bp", smt=True).build_environment()
        assert env.smt

    def test_run_attack_returns_result(self):
        result = run_attack("branch_shadowing", "baseline", iterations=50)
        assert isinstance(result, AttackResult)
        assert result.iterations == 50
        assert 0.0 <= result.success_rate <= 1.0

    def test_attack_matrix_and_summary(self):
        results = run_attack_matrix(["branch_shadowing"], ["baseline", "xor_btb"],
                                    iterations=40)
        table = summarise(results)
        assert set(table) == {"baseline", "xor_btb"}
        assert table["baseline"]["branch_shadowing"] > table["xor_btb"]["branch_shadowing"]

    def test_result_advantage(self):
        result = AttackResult("a", "m", False, 100, 75, chance_level=0.5)
        assert result.advantage == pytest.approx(0.25)


class TestReuseAttacksSingleThread:
    """PoC behaviour on the single-threaded core (Section 5.5)."""

    def test_btb_training_succeeds_on_baseline(self):
        result = run_attack("spectre_v2_btb_training", "baseline", iterations=200)
        assert result.success_rate > 0.9

    @pytest.mark.parametrize("mechanism", ["xor_btb", "noisy_xor_btb", "xor_bp",
                                           "noisy_xor_bp", "complete_flush",
                                           "precise_flush"])
    def test_btb_training_defeated_by_protection(self, mechanism):
        result = run_attack("spectre_v2_btb_training", mechanism, iterations=200)
        assert result.success_rate < 0.05

    def test_pht_training_succeeds_on_baseline(self):
        result = run_attack("pht_training", "baseline", iterations=15)
        assert result.success_rate > 0.9
        assert result.details["training_accuracy"] > 0.9

    @pytest.mark.parametrize("mechanism", ["xor_pht", "noisy_xor_pht", "xor_bp",
                                           "noisy_xor_bp", "complete_flush"])
    def test_pht_training_defeated_by_protection(self, mechanism):
        result = run_attack("pht_training", mechanism, iterations=15)
        assert result.success_rate < 0.05

    def test_branchscope_perceives_direction_on_baseline(self):
        result = run_attack("branchscope", "baseline", iterations=200)
        assert result.success_rate > 0.9

    @pytest.mark.parametrize("mechanism", ["xor_pht", "noisy_xor_pht",
                                           "complete_flush", "precise_flush"])
    def test_branchscope_defeated_by_protection(self, mechanism):
        result = run_attack("branchscope", mechanism, iterations=200)
        assert abs(result.success_rate - 0.5) < 0.15

    def test_branch_shadowing_on_baseline_and_protected(self):
        baseline = run_attack("branch_shadowing", "baseline", iterations=200)
        protected = run_attack("branch_shadowing", "noisy_xor_btb", iterations=200)
        assert baseline.success_rate > 0.9
        assert abs(protected.success_rate - 0.5) < 0.15


class TestContentionAttacks:
    def test_sbpa_succeeds_on_baseline(self):
        result = run_attack("sbpa", "baseline", iterations=200)
        assert result.success_rate > 0.9

    @pytest.mark.parametrize("mechanism", ["complete_flush", "precise_flush",
                                           "xor_btb", "noisy_xor_btb"])
    def test_sbpa_defeated_on_single_thread(self, mechanism):
        result = run_attack("sbpa", mechanism, iterations=200)
        assert abs(result.success_rate - 0.5) < 0.15

    def test_sbpa_on_smt_defeated_only_by_index_randomisation(self):
        flush = run_attack("sbpa", "complete_flush", smt=True, iterations=150)
        content = run_attack("sbpa", "xor_btb", smt=True, iterations=150)
        noisy = run_attack("sbpa", "noisy_xor_btb", smt=True, iterations=150)
        assert flush.success_rate > 0.9
        assert content.success_rate > 0.9
        assert abs(noisy.success_rate - 0.5) < 0.15

    def test_jump_over_aslr_recovers_address_bits_without_index_keys(self):
        baseline = run_attack("jump_over_aslr", "baseline", smt=True, iterations=60)
        content = run_attack("jump_over_aslr", "xor_btb", smt=True, iterations=60)
        assert baseline.success_rate > 0.8
        assert content.success_rate > 0.8

    def test_jump_over_aslr_defeated_by_noisy_xor(self):
        result = run_attack("jump_over_aslr", "noisy_xor_btb", smt=True, iterations=60)
        assert result.success_rate < 0.3


class TestSmtReuseAttacks:
    def test_flush_mechanisms_do_not_protect_reuse_on_smt(self):
        result = run_attack("spectre_v2_btb_training", "complete_flush", smt=True,
                            iterations=150)
        assert result.success_rate > 0.9

    def test_thread_id_tagging_protects_reuse_on_smt(self):
        result = run_attack("spectre_v2_btb_training", "precise_flush", smt=True,
                            iterations=150)
        assert result.success_rate < 0.05

    def test_xor_btb_protects_reuse_on_smt(self):
        result = run_attack("spectre_v2_btb_training", "xor_btb", smt=True,
                            iterations=150)
        assert result.success_rate < 0.05

    def test_calibrated_branchscope_breaks_naive_xor_pht(self):
        naive = run_attack("branchscope_calibrated", "xor_pht_simple", smt=True,
                           iterations=150)
        enhanced = run_attack("branchscope_calibrated", "noisy_xor_pht", smt=True,
                              iterations=150)
        assert naive.success_rate > 0.85
        assert enhanced.success_rate < 0.75
