"""Tests for the PHT covert channel."""

import pytest

from repro.attacks.covert_channel import CovertChannelResult, run_covert_channel


class TestResultMetrics:
    def test_error_free_channel_has_full_capacity(self):
        result = CovertChannelResult("baseline", False, bits_sent=100, bit_errors=0)
        assert result.bit_error_rate == 0.0
        assert result.capacity_bits_per_symbol == pytest.approx(1.0)
        assert result.bandwidth_bits_per_second == pytest.approx(
            result.symbols_per_second)

    def test_random_channel_has_zero_capacity(self):
        result = CovertChannelResult("noisy_xor_bp", False, bits_sent=100,
                                     bit_errors=50)
        assert result.bit_error_rate == pytest.approx(0.5)
        assert result.capacity_bits_per_symbol == pytest.approx(0.0)
        assert result.bandwidth_bits_per_second == pytest.approx(0.0)

    def test_error_rate_above_half_is_clamped_for_capacity(self):
        result = CovertChannelResult("baseline", False, bits_sent=100,
                                     bit_errors=80)
        assert 0.0 <= result.capacity_bits_per_symbol <= 1.0

    def test_empty_transmission_defaults_to_useless_channel(self):
        result = CovertChannelResult("baseline", False, bits_sent=0, bit_errors=0)
        assert result.bit_error_rate == 0.5


class TestTransmission:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            run_covert_channel(payload_bits=0)
        with pytest.raises(ValueError):
            run_covert_channel(bits_per_burst=0)

    def test_baseline_channel_is_nearly_error_free(self):
        result = run_covert_channel("baseline", payload_bits=128, seed=3)
        assert result.bit_error_rate < 0.05
        assert result.capacity_bits_per_symbol > 0.7

    def test_noisy_xor_closes_the_channel(self):
        result = run_covert_channel("noisy_xor_bp", payload_bits=128, seed=3)
        # The receiver's key differs from the sender's, so received bits are
        # uncorrelated with the payload: the error rate sits near one half.
        assert 0.3 < result.bit_error_rate < 0.7
        assert result.capacity_bits_per_symbol < 0.2

    def test_complete_flush_closes_the_time_shared_channel(self):
        result = run_covert_channel("complete_flush", payload_bits=128, seed=3)
        assert result.capacity_bits_per_symbol < 0.2

    def test_bandwidth_ordering_matches_protection(self):
        open_channel = run_covert_channel("baseline", payload_bits=96, seed=7)
        closed_channel = run_covert_channel("noisy_xor_bp", payload_bits=96, seed=7)
        assert (open_channel.bandwidth_bits_per_second
                > closed_channel.bandwidth_bits_per_second)

    def test_result_records_configuration(self):
        result = run_covert_channel("xor_bp", payload_bits=64, smt=False, seed=1)
        assert result.mechanism == "xor_bp"
        assert result.bits_sent == 64
        assert result.smt is False
