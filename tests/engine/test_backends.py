"""Registry / selection behaviour of the execution-backend layer.

Covers the contract that does **not** need numpy: registration rules,
strict named-source parsing (the ``REPRO_SCALE`` convention), and the
environment fallback.  Bit-identity of the numpy backend itself lives in
``test_backend_parity.py``.
"""

import pytest

from repro.engine import backends as eb
from repro.engine import (
    BACKEND_VAR,
    DEFAULT_BACKEND,
    ExecutionBackend,
    PythonBackend,
    active_backend,
    available_backends,
    env_backend,
    get_backend,
    parse_backend,
    register_backend,
)


class _DummyBackend(ExecutionBackend):
    name = "dummy"


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway backends without leaking them."""
    before = set(eb._FACTORIES)
    yield
    for key in set(eb._FACTORIES) - before:
        eb._FACTORIES.pop(key, None)
        eb._INSTANCES.pop(key, None)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "python" in names
        assert "numpy" in names

    def test_python_backend_is_singleton_reference(self):
        backend = get_backend("python")
        assert isinstance(backend, PythonBackend)
        assert backend.name == DEFAULT_BACKEND == "python"
        assert get_backend("python") is backend
        assert get_backend("  PYTHON ") is backend  # normalised lookup

    def test_unknown_backend_names_available_set(self):
        with pytest.raises(ValueError, match="unknown backend 'fortran'"):
            get_backend("fortran")

    def test_duplicate_registration_rejected(self, scratch_registry):
        register_backend("dummy", _DummyBackend)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dummy", _DummyBackend)
        # replace=True is the explicit override, and drops the old instance
        first = get_backend("dummy")
        register_backend("dummy", _DummyBackend, replace=True)
        assert get_backend("dummy") is not first

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("   ", _DummyBackend)


class TestParseBackend:
    def test_valid_name_canonicalised(self):
        assert parse_backend(" Python ") == "python"

    def test_unknown_name_names_the_env_var(self):
        with pytest.raises(ValueError) as err:
            parse_backend("cuda")
        message = str(err.value)
        assert BACKEND_VAR in message
        assert "'cuda'" in message
        assert "python" in message  # the error lists what *is* registered

    def test_unknown_name_names_a_cli_source(self):
        with pytest.raises(ValueError, match="--backend must name"):
            parse_backend("cuda", source="--backend")

    def test_unusable_backend_reports_import_failure(self, scratch_registry):
        def broken_factory():
            raise ImportError("no such module: not_a_real_dep")

        register_backend("broken", broken_factory)
        with pytest.raises(ValueError) as err:
            parse_backend("broken", source="--backend")
        message = str(err.value)
        assert message.startswith("--backend=broken is not usable")
        assert "not_a_real_dep" in message


class TestEnvBackend:
    def test_unset_falls_back_to_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_VAR, raising=False)
        assert env_backend() == "python"
        assert isinstance(active_backend(), PythonBackend)

    def test_blank_falls_back_to_python(self, monkeypatch):
        monkeypatch.setenv(BACKEND_VAR, "   ")
        assert env_backend() == "python"

    def test_invalid_value_is_a_named_hard_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_VAR, "gpu")
        with pytest.raises(ValueError, match=f"{BACKEND_VAR} must name"):
            env_backend()

    def test_explicit_mapping_overrides_environ(self, monkeypatch):
        monkeypatch.setenv(BACKEND_VAR, "gpu")
        assert env_backend({}) == "python"
        assert env_backend({BACKEND_VAR: "python"}) == "python"

    def test_numpy_selection_when_available(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv(BACKEND_VAR, "numpy")
        assert env_backend() == "numpy"
        assert active_backend().name == "numpy"


class TestNumpyFactoryError:
    def test_missing_numpy_is_a_named_import_error(self, monkeypatch):
        """Simulate numpy being absent: the error must tell users what to do."""
        import builtins
        import sys

        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("No module named 'numpy'")
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "numpy", raising=False)
        monkeypatch.delitem(sys.modules, "repro.engine.numpy_backend",
                            raising=False)
        monkeypatch.setattr(builtins, "__import__", no_numpy)
        eb._INSTANCES.pop("numpy", None)
        try:
            with pytest.raises(ValueError) as err:
                parse_backend("numpy")
        finally:
            monkeypatch.undo()
            eb._INSTANCES.pop("numpy", None)
        message = str(err.value)
        assert f"{BACKEND_VAR}=numpy is not usable" in message
        assert "install numpy or use REPRO_BACKEND=python" in message
