"""Exactness property tests for the numpy backend's vectorized helpers.

Every helper here replaces a scalar loop somewhere in the hot path, and
each one promises *bit-identity* with that loop — not approximation.
These tests replay the scalar reference next to the vectorized form over
randomized inputs and require equality draw-for-draw, including the
Mersenne-Twister generator state (so the surrounding record stream stays
aligned).
"""

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.engine.numpy_backend import (  # noqa: E402
    _GAP_BULK_MIN,
    _bit_ext,
    _bulk_uniforms,
    _chunk_fold,
    _fold_trajectory,
    _gap_block,
    _lane_groups,
)
from repro.predictors.tage import TagePredictor  # noqa: E402
from repro.workloads.generator import make_workload  # noqa: E402


class TestBulkUniforms:
    @pytest.mark.parametrize("count", [1, 2, 7, 64, 333, 1024])
    def test_matches_scalar_random_and_generator_state(self, count):
        seed = 0xC0FFEE ^ count
        scalar_rng = random.Random(seed)
        bulk_rng = random.Random(seed)
        expected = [scalar_rng.random() for _ in range(count)]
        got = _bulk_uniforms(bulk_rng, count)
        assert got.tolist() == expected  # float64-exact, not approx
        # Same words consumed: both generators continue identically.
        assert bulk_rng.getrandbits(64) == scalar_rng.getrandbits(64)


class TestGapBlock:
    @staticmethod
    def _scalar(rng, count, neg_mean_gap):
        return [int(math.log(1.0 - rng.random()) * neg_mean_gap) + 1
                for _ in range(count)]

    @pytest.mark.parametrize("count", [4, _GAP_BULK_MIN - 1, _GAP_BULK_MIN,
                                       500, 4096])
    @pytest.mark.parametrize("mean_gap", [1.5, 9.0, 40.0])
    def test_matches_scalar_gaps_and_generator_state(self, count, mean_gap):
        seed = count * 31 + int(mean_gap)
        scalar_rng = random.Random(seed)
        bulk_rng = random.Random(seed)
        expected = self._scalar(scalar_rng, count, -mean_gap)
        got = _gap_block(bulk_rng, count, -mean_gap)
        assert got == expected
        assert bulk_rng.getrandbits(64) == scalar_rng.getrandbits(64)

    def test_many_seeds_cover_boundary_draws(self):
        """Sweep enough draws that integer-boundary cases appear."""
        for seed in range(40):
            scalar_rng = random.Random(seed)
            bulk_rng = random.Random(seed)
            expected = self._scalar(scalar_rng, 1000, -25.0)
            assert _gap_block(bulk_rng, 1000, -25.0) == expected


class TestFoldTrajectory:
    def test_matches_reference_swar_push(self):
        """Replay ``TagePredictor._push_history`` against the closed form.

        The predictor is warmed with a random prefix first, so the
        trajectory starts from non-trivial register and GHR state.
        """
        p = TagePredictor()
        tid = 0
        rng = random.Random(2021)
        for _ in range(300):  # warm-up beyond the deepest history length
            p._push_history(bool(rng.getrandbits(1)), tid)

        outcomes = [rng.getrandbits(1) for _ in range(257)]
        regs = p._folded_regs(tid)
        cap = p._ghr._bits
        ghr0 = p._ghr.value(tid)
        lengths = np.asarray(p._history_lengths, dtype=np.int64)
        outc = np.asarray(outcomes, dtype=np.int64)
        ext = _bit_ext(ghr0, cap, outc)

        files = (p._swar_i, p._swar_t0, p._swar_t1)
        trajs = []
        for k, swar in enumerate(files):
            wmask = (1 << swar.width) - 1
            f0 = np.asarray(
                [(regs[k] >> off) & wmask for off in swar.lane_offsets],
                dtype=np.int64)
            trajs.append(_fold_trajectory(swar.width, lengths, f0, outc,
                                          ext, cap))

        def lanes(k):
            swar = files[k]
            wmask = (1 << swar.width) - 1
            return [(regs[k] >> off) & wmask for off in swar.lane_offsets]

        for i, outcome in enumerate(outcomes):
            for k in range(3):
                assert trajs[k][i].tolist() == lanes(k), \
                    f"file {k} diverged entering branch {i}"
            p._push_history(bool(outcome), tid)
        for k in range(3):  # the final (post-window) row as well
            assert trajs[k][len(outcomes)].tolist() == lanes(k)


class TestLaneGroups:
    @pytest.mark.parametrize("n_lanes,pitch,width", [
        (7, 11, 10), (12, 13, 12), (1, 64, 63), (20, 4, 3), (5, 30, 29),
    ])
    def test_groups_partition_and_fit_int64(self, n_lanes, pitch, width):
        groups = _lane_groups(n_lanes, pitch, width)
        covered = [t for a, b in groups for t in range(a, b)]
        assert covered == list(range(n_lanes))
        for a, b in groups:
            assert (b - a - 1) * pitch + width <= 63  # top bit below sign


class TestChunkFold:
    def test_matches_scalar_fold(self):
        rng = random.Random(7)
        total_bits, width = 31, 12
        mask = (1 << width) - 1
        values = [rng.getrandbits(total_bits) for _ in range(200)]
        expected = []
        for value in values:
            folded, v = 0, value
            while v:
                folded ^= v & mask
                v >>= width
            expected.append(folded & mask)
        got = _chunk_fold(np.asarray(values, dtype=np.int64), total_bits,
                          width, mask)
        assert got.tolist() == expected


class TestRecordBatchesGapBlock:
    @pytest.mark.parametrize("name", ["gcc", "mcf", "povray", "milc"])
    def test_stream_identical_with_bulk_gaps(self, name):
        """``record_batches(gap_block=...)`` must not perturb the stream."""
        seed = sum(map(ord, name))
        scalar = make_workload(name, seed=seed)
        bulk = make_workload(name, seed=seed)
        it_scalar = scalar.record_batches(512)
        it_bulk = bulk.record_batches(512, gap_block=_gap_block)
        for _ in range(8):
            assert next(it_bulk) == next(it_scalar)
