"""python-vs-numpy backend parity at the engine level.

The numpy backend's contract is *bit-identity*: the same
:class:`RunResult`, the same raw (still encoded) predictor storage, the
same figures — only the wall-clock differs.  This suite runs curated
small configurations through both backends and compares complete result
snapshots plus raw storage; the randomized cross-product lives in
``tests/cpu/test_differential_fuzz.py`` and the full-scale pin in the
golden-trace suite.
"""

import pytest

pytest.importorskip("numpy")

from repro.core.registry import preset_names  # noqa: E402
from repro.cpu.config import fpga_prototype, sunny_cove_smt  # noqa: E402
from repro.cpu.core import SingleThreadCore  # noqa: E402
from repro.cpu.smt import SmtCore  # noqa: E402
from repro.engine import get_backend  # noqa: E402
from repro.experiments.runner import build_bpu  # noqa: E402
from repro.experiments.scaling import ExperimentScale  # noqa: E402
from repro.workloads import (  # noqa: E402
    SINGLE_THREAD_PAIRS,
    SMT2_PAIRS,
    make_pair_workloads,
)

PRESETS = sorted(preset_names())

SCALE = ExperimentScale(
    time_scale=200.0, smt_time_scale=400.0, syscall_time_scale=25.0,
    st_target_branches=2_000, st_warmup_branches=500,
    smt_instructions=20_000, smt_warmup_instructions=5_000, seed=2021)


def _snapshot(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "threads": {
            name: (t.cycles, t.instructions, t.branches,
                   t.conditional_branches, t.direction_mispredicts,
                   t.target_mispredicts, t.btb_lookups, t.btb_hits,
                   t.syscalls, t.context_switches)
            for name, t in result.threads.items()},
    }


def _raw_state(bpu):
    return ([list(table.rows()) for table in bpu.direction.tables()],
            bpu.btb.raw_sets())


def _single_thread(preset, predictor, backend):
    config = fpga_prototype(predictor)
    workloads = make_pair_workloads(SINGLE_THREAD_PAIRS[0], seed=SCALE.seed)
    bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
    core = SingleThreadCore(config, bpu, workloads,
                            time_scale=SCALE.time_scale,
                            syscall_time_scale=SCALE.syscall_time_scale,
                            backend=backend)
    result = core.run(target_branches=SCALE.st_target_branches,
                      warmup_branches=SCALE.st_warmup_branches,
                      mechanism_name=preset, engine="batched")
    return result, bpu


def _smt(preset, predictor, backend):
    config = sunny_cove_smt(predictor)
    workloads = make_pair_workloads(SMT2_PAIRS[0], seed=SCALE.seed)
    bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
    core = SmtCore(config, bpu, workloads, time_scale=SCALE.smt_time_scale,
                   backend=backend)
    result = core.run(instructions=SCALE.smt_instructions,
                      warmup_instructions=SCALE.smt_warmup_instructions,
                      mechanism_name=preset, engine="batched")
    return result, bpu


class TestSingleThreadParity:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("predictor", ["tage", "gshare"])
    def test_results_and_raw_storage_identical(self, preset, predictor):
        res_py, bpu_py = _single_thread(preset, predictor, "python")
        res_np, bpu_np = _single_thread(preset, predictor, "numpy")
        assert _snapshot(res_np) == _snapshot(res_py)
        assert _raw_state(bpu_np) == _raw_state(bpu_py)


class TestSmtParity:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_results_and_raw_storage_identical(self, preset):
        res_py, bpu_py = _smt(preset, "tage", "python")
        res_np, bpu_np = _smt(preset, "tage", "numpy")
        assert _snapshot(res_np) == _snapshot(res_py)
        assert _raw_state(bpu_np) == _raw_state(bpu_py)


class TestGenericPredictorsParity:
    """Predictors without vectorized kernels fall through untouched."""

    @pytest.mark.parametrize("predictor", ["tournament", "bimodal"])
    def test_fallthrough_is_bit_identical(self, predictor):
        res_py, bpu_py = _single_thread("xor_bp", predictor, "python")
        res_np, bpu_np = _single_thread("xor_bp", predictor, "numpy")
        assert _snapshot(res_np) == _snapshot(res_py)
        assert _raw_state(bpu_np) == _raw_state(bpu_py)


class TestKernelEngagement:
    """The accelerated kernels really are what the backend hands out.

    A silent fall-through to the reference kernels would pass every
    parity test while losing the speedup — pin the dispatch itself.
    """

    def test_tage_kernel_is_vectorized(self):
        backend = get_backend("numpy")
        bpu = build_bpu(fpga_prototype(), "xor_bp", seed=7)
        fetch = backend.direction_kernel_fetch(bpu.direction)
        kernel = fetch(0)
        base = bpu.direction.exec_kernel(0)
        assert getattr(kernel, "backend", None) == "numpy"
        assert kernel.arm == base.arm  # dispatch arm is preserved
        assert callable(kernel.feed)
        assert fetch(0) is kernel  # cached per (predictor, thread)

    def test_gshare_kernel_is_vectorized(self):
        backend = get_backend("numpy")
        bpu = build_bpu(fpga_prototype("gshare"), "xor_bp", seed=7)
        kernel = backend.direction_kernel_fetch(bpu.direction)(0)
        assert getattr(kernel, "backend", None) == "numpy"
        assert callable(kernel.feed)

    def test_btb_kernel_is_vectorized(self):
        backend = get_backend("numpy")
        bpu = build_bpu(fpga_prototype(), "xor_bp", seed=7)
        kernel = backend.conditional_kernel_fetch(bpu.btb)(0)
        assert getattr(kernel, "backend", None) == "numpy"
        assert callable(kernel.feed)

    def test_flush_invalidates_cached_kernel(self):
        backend = get_backend("numpy")
        bpu = build_bpu(fpga_prototype(), "xor_bp", seed=7)
        fetch = backend.direction_kernel_fetch(bpu.direction)
        before = fetch(0)
        bpu.notify_context_switch(0)  # flush/rekey drops the base kernel
        after = fetch(0)
        assert after is not before

    def test_generic_direction_predictor_falls_through(self):
        """Tournament has no kernel protocol: both backends agree on that."""
        backend = get_backend("numpy")
        bpu = build_bpu(fpga_prototype("tournament"), "xor_bp", seed=7)
        assert backend.direction_kernel_fetch(bpu.direction) is \
            get_backend("python").direction_kernel_fetch(bpu.direction)


class TestBackendSelectionThroughCore:
    def test_env_selected_backend_matches_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        res_env, _ = _single_thread("baseline", "tage", None)
        monkeypatch.delenv("REPRO_BACKEND")
        res_py, _ = _single_thread("baseline", "tage", "python")
        assert _snapshot(res_env) == _snapshot(res_py)

    def test_backend_instance_accepted(self):
        backend = get_backend("numpy")
        res_obj, _ = _single_thread("baseline", "tage", backend)
        res_py, _ = _single_thread("baseline", "tage", "python")
        assert _snapshot(res_obj) == _snapshot(res_py)


class TestStoreRoundTrip:
    """Store entries are backend-agnostic down to the digest.

    Backends are a pure execution strategy: ``CaseSpec.cache_key()`` and
    the store digest never mention them.  A numpy-produced entry must
    therefore be byte-identical to (and replayable as) the python-produced
    one — the content-addressed store's conflicting-digest rejection is the
    enforcement mechanism, so ``put``-ing both under one key must succeed.
    """

    def test_cross_backend_entries_byte_identical(self, tmp_path,
                                                  monkeypatch):
        from repro.cpu.stats import run_result_to_dict
        from repro.experiments.executor import (
            CaseSpec,
            RunResultCache,
            SweepExecutor,
        )
        from repro.experiments.store import ResultStore

        spec = CaseSpec(kind="single", pair=SINGLE_THREAD_PAIRS[0],
                        config=fpga_prototype(), preset="xor_bp",
                        scale=SCALE)

        def simulate(backend):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            executor = SweepExecutor(
                jobs=1, cache=RunResultCache(directory=False, store=False))
            return executor.run_spec(spec)

        res_np = simulate("numpy")
        res_py = simulate("python")
        key = spec.cache_key()  # backend never enters the key

        # numpy publishes first; the python replay must land as a clean
        # identical no-op (a digest conflict would raise) — and vice versa.
        store = ResultStore(str(tmp_path / "np-first"))
        store.put(key, res_np)
        store.put(key, res_py)
        assert run_result_to_dict(store.get(key)) == \
            run_result_to_dict(res_py)

        store = ResultStore(str(tmp_path / "py-first"))
        store.put(key, res_py)
        store.put(key, res_np)
        assert run_result_to_dict(store.get(key)) == \
            run_result_to_dict(res_np)
