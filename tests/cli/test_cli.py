"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("list", "run", "attack", "leakage", "covert", "hwcost",
                        "report"):
            args = parser.parse_args([command] + (
                ["figure7"] if command == "run" else
                ["branchscope"] if command == "attack" else []))
            assert args.command == command

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table5"])
        assert args.experiment == "table5"
        assert args.scale is None
        assert args.json is None

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "sbpa", "--mechanism", "noisy_xor_bp", "--smt",
             "--iterations", "50"])
        assert args.mechanism == "noisy_xor_bp"
        assert args.smt is True
        assert args.iterations == 50


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_mentions_experiments_attacks_and_presets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output
        assert "branchscope" in output
        assert "noisy_xor_bp" in output
        assert "perceptron" in output


class TestRunCommand:
    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table5_with_exports(self, tmp_path, capsys):
        json_path = str(tmp_path / "table5.json")
        csv_path = str(tmp_path / "table5.csv")
        assert main(["run", "table5", "--json", json_path, "--csv", csv_path]) == 0
        output = capsys.readouterr().out
        assert "Table 5" in output
        with open(json_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["name"].lower().startswith("table 5")
        # Table 5 has no figure series, so the CSV export reports a no-op.
        assert "no figure series" in output or "CSV written" in output

    def test_run_table2_is_configuration_only(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestAttackCommand:
    def test_unknown_attack_fails(self, capsys):
        assert main(["attack", "not_an_attack"]) == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_attack_reports_success_rate(self, capsys):
        assert main(["attack", "branchscope", "--mechanism", "noisy_xor_bp",
                     "--iterations", "60"]) == 0
        output = capsys.readouterr().out
        assert "success rate" in output
        assert "noisy_xor_bp" in output


class TestLeakageCommand:
    def test_leakage_table_lists_all_mechanisms(self, capsys):
        assert main(["leakage", "--mechanisms", "baseline", "noisy_xor_bp",
                     "--trials", "40"]) == 0
        output = capsys.readouterr().out
        assert "baseline" in output
        assert "noisy_xor_bp" in output
        assert "pht_direction" in output
        assert "btb_occupancy" in output


class TestCovertCommand:
    def test_baseline_channel_reported_open(self, capsys):
        assert main(["covert", "--bits", "64"]) == 0
        output = capsys.readouterr().out
        assert "bit error rate" in output
        assert "bits/s" in output

    def test_protected_channel_reported_closed(self, capsys):
        assert main(["covert", "--mechanism", "noisy_xor_bp", "--bits", "64"]) == 0
        assert "noisy_xor_bp" in capsys.readouterr().out


class TestHwcostCommand:
    def test_default_estimate(self, capsys):
        assert main(["hwcost"]) == 0
        output = capsys.readouterr().out
        assert "BTB 2w256" in output
        assert "TAGE PHT" in output

    def test_custom_geometry(self, capsys):
        assert main(["hwcost", "--btb", "512", "--ways", "4", "--pht", "1024"]) == 0
        assert "BTB 4w512" in capsys.readouterr().out


class TestReportCommand:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["report", "--experiments", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_report_on_cheap_experiments(self, tmp_path, capsys):
        output_path = str(tmp_path / "report.md")
        assert main(["report", "--experiments", "table2", "table5",
                     "--output", output_path]) == 0
        output = capsys.readouterr().out
        assert "Paper reports" in output
        with open(output_path, "r", encoding="utf-8") as handle:
            markdown = handle.read()
        assert "Table 5" in markdown
