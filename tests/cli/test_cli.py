"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("list", "run", "attack", "leakage", "covert", "hwcost",
                        "report", "merge", "plan"):
            args = parser.parse_args([command] + (
                ["figure7"] if command == "run" else
                ["branchscope"] if command == "attack" else
                ["shard.json"] if command == "merge" else []))
            assert args.command == command

    def test_run_all_options(self):
        args = build_parser().parse_args(
            ["run", "all", "--shard", "1/4", "--jobs", "2", "--out", "out",
             "--experiments", "figure1", "figure8"])
        assert args.experiment == "all"
        assert args.shard == "1/4"
        assert args.jobs == "2"
        assert args.out == "out"
        assert args.experiments == ["figure1", "figure8"]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table5"])
        assert args.experiment == "table5"
        assert args.scale is None
        assert args.json is None

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "sbpa", "--mechanism", "noisy_xor_bp", "--smt",
             "--iterations", "50"])
        assert args.mechanism == "noisy_xor_bp"
        assert args.smt is True
        assert args.iterations == 50


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_mentions_experiments_attacks_and_presets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output
        assert "branchscope" in output
        assert "noisy_xor_bp" in output
        assert "perceptron" in output


class TestRunCommand:
    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table5_with_exports(self, tmp_path, capsys):
        json_path = str(tmp_path / "table5.json")
        csv_path = str(tmp_path / "table5.csv")
        assert main(["run", "table5", "--json", json_path, "--csv", csv_path]) == 0
        output = capsys.readouterr().out
        assert "Table 5" in output
        with open(json_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["name"].lower().startswith("table 5")
        # Table 5 has no figure series, so the CSV export reports a no-op.
        assert "no figure series" in output or "CSV written" in output

    def test_run_table2_is_configuration_only(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_prints_manifest_table(self, capsys):
        assert main(["plan", "--experiments", "figure1", "table5"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "unique after dedupe" in output

    def test_plan_hash_is_engine_prefixed_and_stable(self, capsys):
        from repro.experiments import ENGINE_VERSION

        assert main(["plan", "--hash", "--experiments", "figure1"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["plan", "--hash", "--experiments", "figure1"]) == 0
        assert capsys.readouterr().out.strip() == first
        assert first.startswith(f"{ENGINE_VERSION}:")

    def test_plan_json(self, capsys):
        assert main(["plan", "--json", "--experiments", "table5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiments"] == {"table5": 0}

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["plan", "--experiments", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_plan_bench_set_hash_is_stable(self, capsys):
        assert main(["plan", "--hash", "--bench-set", "int"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["plan", "--hash", "--bench-set", "int"]) == 0
        assert capsys.readouterr().out.strip() == first
        # A different selection plans a different manifest.
        assert main(["plan", "--hash", "--bench-set", "fp"]) == 0
        assert capsys.readouterr().out.strip() != first

    def test_plan_unknown_bench_set_rejected(self, capsys):
        assert main(["plan", "--bench-set", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err and "large_footprint" in err

    def test_plan_bad_trace_dir_rejected(self, capsys, tmp_path):
        missing = str(tmp_path / "nowhere")
        assert main(["plan", "--bench-set", "traces",
                     "--trace-dir", missing]) == 2
        assert "trace" in capsys.readouterr().err.lower()

    def test_run_single_experiment_rejects_bench_set(self, capsys):
        assert main(["run", "figure1", "--bench-set", "int"]) == 2
        assert "--bench-set" in capsys.readouterr().err


class TestRunAllCommand:
    def test_malformed_shard_rejected(self, capsys):
        assert main(["run", "all", "--shard", "3/2"]) == 2
        err = capsys.readouterr().err
        assert "--shard" in err and "0-based" in err

    def test_malformed_jobs_rejected(self, capsys):
        assert main(["run", "all", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_malformed_env_shard_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD", "banana")
        assert main(["run", "all", "--experiments", "table5"]) == 2
        assert "REPRO_SHARD" in capsys.readouterr().err

    def test_malformed_env_jobs_rejected_before_planning(self, capsys,
                                                         monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert main(["run", "all", "--experiments", "table5"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_sharded_run_and_merge_round_trip(self, tmp_path, capsys):
        # Caseless-only manifest: exercises the full CLI pipeline (two shard
        # artifacts, then a validated merge) without any simulation cost.
        out = str(tmp_path / "shards")
        for index in range(2):
            assert main(["run", "all", "--experiments", "table2", "table5",
                         "--shard", f"{index}/2", "--out", out]) == 0
        output = capsys.readouterr().out
        assert "shard artifact written" in output
        merged = str(tmp_path / "merged")
        shards = [f"{out}/shard-0-of-2.json", f"{out}/shard-1-of-2.json"]
        assert main(["merge", "--out", merged] + shards) == 0
        output = capsys.readouterr().out
        assert "executed exactly once" in output
        with open(f"{merged}/table5.json", encoding="utf-8") as handle:
            assert json.load(handle)["name"].startswith("Table 5")

    def test_malformed_env_timeout_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CASE_TIMEOUT", "-5")
        assert main(["run", "all", "--experiments", "table5"]) == 2
        assert "REPRO_CASE_TIMEOUT" in capsys.readouterr().err

    def test_malformed_fault_spec_rejected_before_planning(self, capsys,
                                                           monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "explode:case_idx=0")
        assert main(["run", "all", "--experiments", "table5"]) == 2
        assert "REPRO_FAULT_SPEC" in capsys.readouterr().err

    def test_resume_requires_a_shard(self, capsys):
        assert main(["run", "all", "--experiments", "table5",
                     "--resume", "out"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_and_out_must_agree(self, capsys):
        assert main(["run", "all", "--experiments", "table5",
                     "--shard", "0/2", "--resume", "a", "--out", "b"]) == 2
        assert "disagree" in capsys.readouterr().err

    @staticmethod
    def _one_case_shard():
        # Shard ownership is key-hash based; find a 1-of-64 shard that owns
        # exactly one figure1 case at --scale 0.05 instead of hard-coding an
        # index that would drift on an engine bump.
        from repro.experiments.manifest import (
            ShardSpec,
            build_manifest,
            experiment_registry,
        )
        from repro.experiments.scaling import ExperimentScale

        manifest = build_manifest(
            scale=ExperimentScale().scaled_by(0.05),
            experiments={"figure1": experiment_registry()["figure1"]})
        return next(i for i in range(64)
                    if len(manifest.shard_cases(ShardSpec(i, 64))) == 1)

    def test_interrupt_maps_to_exit_130(self, tmp_path, capsys, monkeypatch):
        # The injected Ctrl-C fires at the top of the first case attempt,
        # before any simulation work.
        shard = self._one_case_shard()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "interrupt:case_idx=0")
        assert main(["run", "all", "--experiments", "figure1",
                     "--scale", "0.05", "--shard", f"{shard}/64",
                     "--out", str(tmp_path / "out")]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_keep_going_exits_3_and_resume_heals(self, tmp_path, capsys,
                                                 monkeypatch):
        # One-case shard whose only case fails permanently: the run still
        # completes (exit 3) and writes a machine-readable failure manifest;
        # a fault-free --resume re-simulates the hole and clears it.
        shard = self._one_case_shard()
        out = str(tmp_path / "chaos")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:attempts=99")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        assert main(["run", "all", "--experiments", "figure1", "--scale",
                     "0.05", "--shard", f"{shard}/64", "--out", out,
                     "--keep-going"]) == 3
        err = capsys.readouterr().err
        assert "FAILED" in err and "InjectedCrash" in err
        assert f"failures-{shard}-of-64.json" in err

        monkeypatch.delenv("REPRO_FAULT_SPEC")
        assert main(["run", "all", "--experiments", "figure1", "--scale",
                     "0.05", "--shard", f"{shard}/64", "--resume", out,
                     "--keep-going"]) == 0
        assert not (tmp_path / "chaos" /
                    f"failures-{shard}-of-64.json").exists()
        assert (tmp_path / "chaos" /
                f"shard-{shard}-of-64.json").exists()

    def test_merge_rejects_incomplete_fleet(self, tmp_path, capsys):
        out = str(tmp_path / "shards")
        assert main(["run", "all", "--experiments", "figure1", "--scale",
                     "0.05", "--shard", "0/64", "--out", out]) == 0
        capsys.readouterr()
        assert main(["merge", f"{out}/shard-0-of-64.json"]) == 2
        assert "merge failed" in capsys.readouterr().err


class TestRepetitionsOption:
    def test_malformed_repetitions_rejected(self, capsys):
        assert main(["run", "all", "--repetitions", "0",
                     "--experiments", "table5"]) == 2
        assert "--repetitions" in capsys.readouterr().err

    def test_repetitions_rejected_for_single_experiments(self, capsys):
        # Never silently dropped: a user asking for a 3-seed mean must not
        # get (and publish) a single-trajectory estimate.
        assert main(["run", "table5", "--repetitions", "3"]) == 2
        assert "--repetitions" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [["--jobs", "8"], ["--shard", "0/4"],
                                       ["--out", "x"],
                                       ["--experiments", "figure1"],
                                       ["--keep-going"], ["--resume", "x"]])
    def test_all_only_flags_rejected_for_single_experiments(self, flags,
                                                            capsys):
        # Same rule for every 'all'-only flag: `run figure1 --jobs 8` must
        # not silently run serially, `--shard 0/4` must not silently run
        # every case.
        assert main(["run", "table5"] + flags) == 2
        assert flags[0] in capsys.readouterr().err

    def test_plan_hash_is_repetition_aware(self, capsys):
        assert main(["plan", "--hash", "--experiments", "figure1"]) == 0
        single = capsys.readouterr().out.strip()
        assert main(["plan", "--hash", "--experiments", "figure1",
                     "--repetitions", "3"]) == 0
        assert capsys.readouterr().out.strip() != single

    def test_plan_table_reports_repetitions(self, capsys):
        assert main(["plan", "--experiments", "figure1",
                     "--repetitions", "2"]) == 0
        assert "repetitions" in capsys.readouterr().out

    def test_run_all_prints_assertable_store_stats(self, capsys):
        # Caseless-only manifest: zero executor cases, so the stats line is
        # exact without simulating anything.
        assert main(["run", "all", "--experiments", "table5"]) == 0
        assert "cases: 0 unique, 0 simulated, 0 store hit(s)" \
            in capsys.readouterr().out


class TestBackendOption:
    def test_unknown_backend_flag_rejected(self, capsys):
        assert main(["run", "table2", "--backend", "cuda"]) == 2
        err = capsys.readouterr().err
        assert "--backend" in err and "'cuda'" in err

    def test_backend_flag_exported_for_workers(self, capsys):
        # The flag reaches the environment so executor worker processes
        # inherit the same backend selection.
        assert main(["run", "table2", "--backend", "python"]) == 0
        assert os.environ.get("REPRO_BACKEND") == "python"

    def test_numpy_backend_flag_accepted(self, capsys):
        pytest.importorskip("numpy")
        assert main(["run", "table2", "--backend", "numpy"]) == 0
        assert os.environ.get("REPRO_BACKEND") == "numpy"

    def test_malformed_env_backend_rejected_before_planning(self, capsys,
                                                            monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        assert main(["run", "all", "--experiments", "table5"]) == 2
        assert "REPRO_BACKEND" in capsys.readouterr().err


class TestStoreCommand:
    def _populate(self, store_dir):
        from repro.experiments.executor import (
            CaseSpec,
            RunResultCache,
            SweepExecutor,
        )
        from repro.experiments.scaling import ExperimentScale
        from repro.experiments.store import ResultStore
        from repro.cpu.config import fpga_prototype
        from repro.workloads.pairs import SINGLE_THREAD_PAIRS

        tiny = ExperimentScale(
            time_scale=800.0, smt_time_scale=800.0, syscall_time_scale=100.0,
            st_target_branches=1_200, st_warmup_branches=300,
            smt_instructions=10_000, smt_warmup_instructions=2_000, seed=7)
        spec = CaseSpec("single", SINGLE_THREAD_PAIRS[0],
                        fpga_prototype("gshare", n_entries=2048),
                        "baseline", tiny)
        store = ResultStore(str(store_dir))
        executor = SweepExecutor(
            jobs=1, cache=RunResultCache(directory=False, store=store))
        executor.run_spec(spec)
        return store

    def test_missing_operation_and_directory_rejected(self, capsys,
                                                      monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["store"]) == 2
        assert "operation" in capsys.readouterr().err
        assert main(["store", "verify"]) == 2
        assert "REPRO_STORE_DIR" in capsys.readouterr().err

    def test_export_ingest_verify_gc_round_trip(self, tmp_path, capsys):
        self._populate(tmp_path / "a")
        export_path = str(tmp_path / "export.json")
        assert main(["store", "export", "--dir", str(tmp_path / "a"),
                     "--out", export_path]) == 0
        assert "exported 1 entr(ies)" in capsys.readouterr().out

        assert main(["store", "ingest", "--dir", str(tmp_path / "b"),
                     export_path]) == 0
        assert "1 ingested" in capsys.readouterr().out

        assert main(["store", "verify", "--dir", str(tmp_path / "b")]) == 0
        assert "verify ok" in capsys.readouterr().out

        assert main(["store", "gc", "--dir", str(tmp_path / "b")]) == 0
        assert "0 entr(ies)" in capsys.readouterr().out

    def test_env_store_dir_is_honoured(self, tmp_path, capsys, monkeypatch):
        store = self._populate(tmp_path / "a")
        assert len(store) == 1
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "a"))
        assert main(["store", "verify"]) == 0
        assert "1 entr(ies)" in capsys.readouterr().out

    def test_verify_reports_corruption(self, tmp_path, capsys):
        store = self._populate(tmp_path / "a")
        key = store.keys()[0]
        with open(store.entry_path(key), "a", encoding="utf-8") as handle:
            handle.write("garbage")
        assert main(["store", "verify", "--dir", str(tmp_path / "a")]) == 2
        assert "CORRUPT" in capsys.readouterr().err

    def test_gc_refuses_non_store_directories(self, tmp_path, capsys):
        (tmp_path / "precious").mkdir()
        assert main(["store", "gc", "--dir", str(tmp_path)]) == 2
        assert "gc failed" in capsys.readouterr().err
        assert (tmp_path / "precious").exists()

    def test_ingest_rejects_foreign_engine(self, tmp_path, capsys):
        import json as _json

        bogus = tmp_path / "foreign.json"
        bogus.write_text(_json.dumps(
            {"engine": "0000.0-other", "cases": {}}))
        assert main(["store", "ingest", "--dir", str(tmp_path / "store"),
                     str(bogus)]) == 2
        assert "ingest failed" in capsys.readouterr().err


class TestAttackCommand:
    def test_unknown_attack_fails(self, capsys):
        assert main(["attack", "not_an_attack"]) == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_attack_reports_success_rate(self, capsys):
        assert main(["attack", "branchscope", "--mechanism", "noisy_xor_bp",
                     "--iterations", "60"]) == 0
        output = capsys.readouterr().out
        assert "success rate" in output
        assert "noisy_xor_bp" in output


class TestLeakageCommand:
    def test_leakage_table_lists_all_mechanisms(self, capsys):
        assert main(["leakage", "--mechanisms", "baseline", "noisy_xor_bp",
                     "--trials", "40"]) == 0
        output = capsys.readouterr().out
        assert "baseline" in output
        assert "noisy_xor_bp" in output
        assert "pht_direction" in output
        assert "btb_occupancy" in output


class TestCovertCommand:
    def test_baseline_channel_reported_open(self, capsys):
        assert main(["covert", "--bits", "64"]) == 0
        output = capsys.readouterr().out
        assert "bit error rate" in output
        assert "bits/s" in output

    def test_protected_channel_reported_closed(self, capsys):
        assert main(["covert", "--mechanism", "noisy_xor_bp", "--bits", "64"]) == 0
        assert "noisy_xor_bp" in capsys.readouterr().out


class TestHwcostCommand:
    def test_default_estimate(self, capsys):
        assert main(["hwcost"]) == 0
        output = capsys.readouterr().out
        assert "BTB 2w256" in output
        assert "TAGE PHT" in output

    def test_custom_geometry(self, capsys):
        assert main(["hwcost", "--btb", "512", "--ways", "4", "--pht", "1024"]) == 0
        assert "BTB 4w512" in capsys.readouterr().out


class TestReportCommand:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["report", "--experiments", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_report_on_cheap_experiments(self, tmp_path, capsys):
        output_path = str(tmp_path / "report.md")
        assert main(["report", "--experiments", "table2", "table5",
                     "--output", output_path]) == 0
        output = capsys.readouterr().out
        assert "Paper reports" in output
        with open(output_path, "r", encoding="utf-8") as handle:
            markdown = handle.read()
        assert "Table 5" in markdown

    @pytest.mark.parametrize("flags", [["--out", "x.html"],
                                       ["--repetitions", "2"],
                                       ["--jobs", "2"]])
    def test_html_only_flags_rejected_without_html(self, flags, capsys):
        assert main(["report", "--experiments", "table5"] + flags) == 2
        err = capsys.readouterr().err
        assert flags[0] in err
        assert "--html reports only" in err

    def test_markdown_output_flag_rejected_with_html(self, capsys):
        assert main(["report", "--html", "--output", "report.md"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_html_report_end_to_end(self, tmp_path, capsys):
        from repro.experiments.executor import ENGINE_VERSION
        from repro.experiments.manifest import build_manifest

        output_path = str(tmp_path / "sub" / "report.html")
        assert main(["report", "--html", "--experiments", "table2", "table5",
                     "--out", output_path]) == 0
        output = capsys.readouterr().out
        assert "cases: 0 unique, 0 simulated, 0 store hit(s)" in output
        assert f"HTML report written to {output_path}" in output
        with open(output_path, "r", encoding="utf-8") as handle:
            html = handle.read()
        # Provenance pins the manifest the same keys would plan.
        manifest = build_manifest(keys=["table2", "table5"])
        assert manifest.manifest_hash() in html
        assert ENGINE_VERSION in html
        assert "Pareto" in html
        assert "<script" not in html


class TestServiceParser:
    def test_known_service_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["serve"]).command == "serve"
        for command in ("watch", "fetch"):
            args = parser.parse_args(
                [command, "job-0001-ab12cd34"] +
                (["--out", "served"] if command == "fetch" else []))
            assert args.command == command
            assert args.job == "job-0001-ab12cd34"
        args = parser.parse_args(
            ["submit", "--experiments", "figure1", "figure8",
             "--bench-set", "unconditional", "--scale", "0.25",
             "--repetitions", "3", "--url", "http://h:1"])
        assert args.command == "submit"
        assert args.experiments == ["figure1", "figure8"]
        assert args.bench_set == ["unconditional"]
        assert args.scale == 0.25
        assert args.url == "http://h:1"

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000", "--dir",
             "store", "--data-dir", "data", "--workers", "2", "--jobs", "4"])
        assert args.host == "0.0.0.0"
        assert args.port == "9000"
        assert args.dir == "store"
        assert args.data_dir == "data"
        assert args.workers == "2"

    def test_store_scoping_flags(self):
        args = build_parser().parse_args(
            ["store", "export", "--out", "x.json",
             "--manifest", "a" * 64, "--manifest", "b" * 64])
        assert args.manifest == ["a" * 64, "b" * 64]
        args = build_parser().parse_args(
            ["store", "gc", "--manifest-hash", "c" * 64])
        assert args.manifest_hash == ["c" * 64]


class TestServeCommand:
    def test_serve_requires_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["serve"]) == 2
        assert "REPRO_STORE_DIR" in capsys.readouterr().err

    def test_malformed_port_and_workers_rejected(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["serve", "--dir", store_dir, "--port", "abc"]) == 2
        assert "--port" in capsys.readouterr().err
        assert main(["serve", "--dir", store_dir, "--port", "70000"]) == 2
        assert "[0, 65535]" in capsys.readouterr().err
        assert main(["serve", "--dir", store_dir, "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_malformed_env_port_rejected(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "nope")
        assert main(["serve", "--dir", str(tmp_path / "store")]) == 2
        assert "REPRO_SERVE_PORT" in capsys.readouterr().err


class TestClientCommands:
    """submit/watch/fetch driven through main() against a live service."""

    @pytest.fixture()
    def service(self, tmp_path):
        from repro.experiments.store import ResultStore
        from repro.service import SimulationService

        svc = SimulationService(ResultStore(str(tmp_path / "store")),
                                str(tmp_path / "data"), port=0, workers=1)
        svc.start()
        yield svc
        svc.stop()

    def test_submit_watch_fetch_round_trip(self, service, tmp_path, capsys):
        # table5 is caseless (a configuration table), so the round trip is
        # fast even against the real registry the server plans from.
        assert main(["submit", "--url", service.url,
                     "--experiments", "table5"]) == 0
        captured = capsys.readouterr()
        job_id = captured.out.strip()  # the id alone, shell-capturable
        assert job_id.startswith("job-")
        assert "queued" in captured.err

        assert main(["watch", job_id, "--url", service.url]) == 0
        captured = capsys.readouterr()
        assert "0 unique, 0 simulated, 0 store hit(s)" in captured.out

        out_dir = tmp_path / "served"
        assert main(["fetch", job_id, "--url", service.url,
                     "--out", str(out_dir)]) == 0
        assert "fetched" in capsys.readouterr().out
        assert sorted(os.listdir(out_dir)) == \
            ["summary.json", "table5.json", "table5.txt"]

    def test_submit_validation_error_exits_2(self, service, capsys):
        assert main(["submit", "--url", service.url,
                     "--experiments", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_client_repetitions_parsed_before_any_request(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:1",
                     "--repetitions", "0"]) == 2
        assert "--repetitions" in capsys.readouterr().err

    def test_unreachable_service_exits_2(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        for argv in (["submit", "--experiments", "table5"],
                     ["watch", "job-0001-aaaaaaaa"],
                     ["fetch", "job-0001-aaaaaaaa", "--out", "x"]):
            assert main(argv + ["--url", f"http://127.0.0.1:{port}"]) == 2
            assert "is 'repro serve' running?" in capsys.readouterr().err


class TestScopedStoreCommands:
    def test_ingest_rejects_non_http_scheme_url(self, tmp_path, capsys):
        assert main(["store", "ingest", "--dir", str(tmp_path / "s"),
                     "ftp://host/export.json"]) == 2
        assert "must be http" in capsys.readouterr().err

    def test_scoped_export_and_gc_flow(self, tmp_path, capsys):
        from repro.cpu.stats import run_result_to_dict
        from repro.experiments.store import ResultStore

        store = TestStoreCommand()._populate(tmp_path / "a")
        key = store.keys()[0]
        store._write("ab" * 32, run_result_to_dict(store.get(key)))
        live = "1a" * 32
        store.register_manifest(live, [key])

        export_path = str(tmp_path / "scoped.json")
        assert main(["store", "export", "--dir", str(tmp_path / "a"),
                     "--out", export_path, "--manifest", live]) == 0
        out = capsys.readouterr().out
        assert "exported 1 entr(ies)" in out and "1 manifest(s)" in out

        assert main(["store", "gc", "--dir", str(tmp_path / "a"),
                     "--manifest-hash", live]) == 0
        assert "superseded manifests" in capsys.readouterr().out
        assert store.keys() == [key]

        assert main(["store", "gc", "--dir", str(tmp_path / "a"),
                     "--manifest-hash", "2b" * 32]) == 2
        assert "not registered" in capsys.readouterr().err
