"""Integration-level tests for the single-threaded and SMT core simulations."""

import pytest

from repro.core.registry import make_bpu
from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.cpu.core import SingleThreadCore, unique_labels
from repro.cpu.smt import SmtCore
from repro.workloads import get_pair, make_pair_workloads, make_workload


def _build(config, preset, seed=11):
    return make_bpu(config.predictor, preset, seed=seed,
                    btb_sets=config.btb_sets, btb_ways=config.btb_ways,
                    btb_miss_forces_not_taken=config.btb_miss_forces_not_taken,
                    predictor_kwargs=dict(config.predictor_kwargs))


@pytest.fixture(scope="module")
def fast_config():
    """A small, fast core configuration for simulation tests."""
    return fpga_prototype("gshare", n_entries=2048)


class TestUniqueLabels:
    def test_unique_names_pass_through(self):
        assert unique_labels(["a", "b"]) == ["a", "b"]

    def test_duplicates_are_disambiguated(self):
        assert unique_labels(["a", "a", "a"]) == ["a", "a#2", "a#3"]


class TestSingleThreadCore:
    def test_runs_and_reports_target_work(self, fast_config):
        pair = get_pair("case6", "single")
        workloads = make_pair_workloads(pair, seed=1)
        core = SingleThreadCore(fast_config, _build(fast_config, "baseline"),
                                workloads, time_scale=200.0)
        result = core.run(target_branches=2000, warmup_branches=0)
        assert result.thread(pair.target).branches == 2000
        assert result.cycles > 0
        assert result.instructions > 2000

    def test_requires_at_least_one_workload(self, fast_config):
        with pytest.raises(ValueError):
            SingleThreadCore(fast_config, _build(fast_config, "baseline"), [])

    def test_background_workload_also_progresses(self, fast_config):
        pair = get_pair("case6", "single")
        workloads = make_pair_workloads(pair, seed=1)
        core = SingleThreadCore(fast_config, _build(fast_config, "baseline"),
                                workloads, time_scale=400.0)
        result = core.run(target_branches=4000, warmup_branches=0)
        background = pair.benchmarks[1]
        assert result.thread(background).branches > 0

    def test_context_switches_follow_interval(self, fast_config):
        pair = get_pair("case6", "single")
        workloads = make_pair_workloads(pair, seed=1)
        core = SingleThreadCore(fast_config, _build(fast_config, "baseline"),
                                workloads, time_scale=400.0)
        result = core.run(target_branches=4000, warmup_branches=0)
        expected = result.cycles / (fast_config.context_switch_interval / 400.0)
        assert result.context_switches == pytest.approx(expected, abs=2)

    def test_privilege_switches_are_even(self, fast_config):
        pair = get_pair("case1", "single")
        workloads = make_pair_workloads(pair, seed=1)
        core = SingleThreadCore(fast_config, _build(fast_config, "baseline"),
                                workloads, time_scale=200.0, syscall_time_scale=200.0)
        result = core.run(target_branches=3000, warmup_branches=0)
        assert result.privilege_switches % 2 == 0
        assert result.privilege_switches > 0

    def test_warmup_phase_excluded_from_stats(self, fast_config):
        pair = get_pair("case6", "single")
        workloads = make_pair_workloads(pair, seed=1)
        core = SingleThreadCore(fast_config, _build(fast_config, "baseline"),
                                workloads, time_scale=400.0)
        result = core.run(target_branches=1000, warmup_branches=1000)
        assert result.thread(pair.target).branches == 1000

    def test_deterministic_given_seeds(self, fast_config):
        pair = get_pair("case6", "single")

        def once():
            workloads = make_pair_workloads(pair, seed=3)
            core = SingleThreadCore(fast_config, _build(fast_config, "noisy_xor_bp", seed=5),
                                    workloads, time_scale=200.0)
            return core.run(target_branches=1500, warmup_branches=0)

        first, second = once(), once()
        assert first.cycles == second.cycles
        assert first.mpki == second.mpki

    def test_flush_mechanism_costs_cycles(self, fast_config):
        pair = get_pair("case6", "single")
        results = {}
        for preset in ("baseline", "complete_flush"):
            workloads = make_pair_workloads(pair, seed=3)
            core = SingleThreadCore(fast_config, _build(fast_config, preset),
                                    workloads, time_scale=800.0)
            results[preset] = core.run(target_branches=6000, warmup_branches=1500)
        overhead = results["complete_flush"].overhead_vs(results["baseline"],
                                                         workload=pair.target)
        assert overhead > 0.0


class TestSmtCore:
    def test_runs_until_instruction_budget(self):
        config = sunny_cove_smt("gshare", 2)
        pair = get_pair("case8", "smt2")
        workloads = make_pair_workloads(pair, seed=1)
        core = SmtCore(config, _build(config, "baseline"), workloads,
                       time_scale=200.0)
        result = core.run(instructions=30_000, warmup_instructions=0)
        assert result.instructions >= 30_000
        assert result.cycles > 0
        assert len(result.threads) == 2

    def test_thread_count_must_match(self):
        config = sunny_cove_smt("gshare", 2)
        with pytest.raises(ValueError):
            SmtCore(config, _build(config, "baseline"), [make_workload("milc")])

    def test_se_mode_suppresses_syscalls(self):
        config = sunny_cove_smt("gshare", 2)
        pair = get_pair("case8", "smt2")
        workloads = make_pair_workloads(pair, seed=1)
        core = SmtCore(config, _build(config, "baseline"), workloads,
                       time_scale=200.0, se_mode=True)
        result = core.run(instructions=25_000)
        assert result.privilege_switches == 0

    def test_full_system_mode_injects_syscalls(self):
        config = sunny_cove_smt("gshare", 2)
        pair = get_pair("case8", "smt2")
        workloads = make_pair_workloads(pair, seed=1)
        core = SmtCore(config, _build(config, "baseline"), workloads,
                       time_scale=200.0, se_mode=False)
        result = core.run(instructions=60_000)
        assert result.privilege_switches > 0

    def test_smt4_supported(self):
        config = sunny_cove_smt("gshare", 4)
        pair = get_pair("quad1", "smt4")
        workloads = make_pair_workloads(pair, seed=1)
        core = SmtCore(config, _build(config, "baseline"), workloads,
                       time_scale=200.0)
        result = core.run(instructions=30_000)
        assert len(result.threads) == 4

    def test_duplicate_benchmarks_get_distinct_labels(self):
        config = sunny_cove_smt("gshare", 4)
        pair = get_pair("quad1", "smt4")  # contains zeusmp twice
        workloads = make_pair_workloads(pair, seed=1)
        core = SmtCore(config, _build(config, "baseline"), workloads,
                       time_scale=200.0)
        result = core.run(instructions=20_000)
        assert len(set(result.threads)) == 4

    def test_complete_flush_hurts_more_than_baseline_on_smt(self):
        config = sunny_cove_smt("gshare", 2)
        pair = get_pair("case7", "smt2")
        results = {}
        for preset in ("baseline", "complete_flush"):
            workloads = make_pair_workloads(pair, seed=1)
            core = SmtCore(config, _build(config, preset), workloads,
                           time_scale=600.0)
            results[preset] = core.run(instructions=60_000, warmup_instructions=15_000)
        assert results["complete_flush"].overhead_vs(results["baseline"]) > 0.0
