"""Randomized differential-parity harness across engines and dispatch arms.

Every kernel rewrite in this repo (packed TAGE storage, generated TAGE and
gshare kernels, the packed-array BTB, fused-XOR storage) promises the same
contract: *bit-identical statistics and storage* versus the scalar reference
protocol, for every isolation preset.  The hand-written parity suites pin a
few curated configurations; this module is the systematic layer — a seeded
generator samples dozens of (preset × predictor × core × switch-schedule)
configurations and drives them through three independent implementations:

* the **scalar** engine (per-record reference loop, generic-capable),
* the **batched** engine (chunked traces + generated kernels — the fast
  engines under test),
* the batched/fast machinery with every storage fast path **forced onto the
  generic virtual dispatch** (the semantic reference for the fused arms).

When numpy is importable the same sampled cases additionally run under the
**numpy execution backend** (vectorized window kernels), which promises the
identical bit-for-bit contract versus the default python backend — both on
its fast paths and when forced onto the generic dispatch (where it must
fall through to the reference kernels untouched).

Engine-level cases compare complete :class:`RunResult` snapshots.  BPU-level
cases additionally stop at every context-switch / rekey boundary and compare
the *raw (still encoded) storage bits* of all direction tables and the BTB,
so a kernel that drifts only between switches — where no end-of-run
statistic would catch it — still fails at the exact boundary.

The harness is deliberately reusable: future kernel rewrites extend
``PRESETS`` / ``PREDICTORS`` or raise ``N_*`` and inherit the whole layer.
"""

import importlib.util
import random

import pytest

from repro.core.registry import make_bpu, preset_names
from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.cpu.core import SingleThreadCore
from repro.cpu.smt import SmtCore
from repro.experiments.runner import build_bpu
from repro.experiments.scaling import ExperimentScale
from repro.types import Privilege
from repro.workloads import SINGLE_THREAD_PAIRS, SMT2_PAIRS, make_pair_workloads
from repro.workloads.generator import make_workload

#: Master seed of the configuration sampler: fixed, so the sampled
#: configuration set is stable across runs (failures are reproducible) but
#: still covers the cross-product far more densely than hand-picked cases.
MASTER_SEED = 0xD1FF5EED

PRESETS = sorted(preset_names())
PREDICTORS = ["tage", "gshare", "tournament", "bimodal"]
WORKLOADS = ["gcc", "mcf", "milc", "gobmk", "povray", "calculix"]

N_ENGINE_CASES = 24
N_BOUNDARY_CASES = 10

_HAS_NUMPY = importlib.util.find_spec("numpy") is not None

# The samplers guarantee every preset a deterministic slot before random
# fill; keep the case counts in step with the preset list as it grows.
assert N_ENGINE_CASES >= 2 * len(PRESETS)
assert N_BOUNDARY_CASES >= len(PRESETS)


def _sample_engine_cases():
    """Sample (preset, predictor, core-kind, schedule) engine-level cases.

    Every preset appears at least twice (single-thread and SMT rotation)
    before the remainder is filled randomly, so no isolation arm can drop
    out of coverage as the lists grow.
    """
    rng = random.Random(MASTER_SEED)
    cases = []
    for i in range(N_ENGINE_CASES):
        preset = PRESETS[i % len(PRESETS)] if i < 2 * len(PRESETS) \
            else rng.choice(PRESETS)
        predictor = rng.choice(PREDICTORS)
        kind = "smt" if i % 2 else "single"
        # Randomised OS-event schedule: context-switch interval and (for the
        # single-thread core) syscall scaling vary per case, so warm-up
        # resets, flushes and rekeys land at different trace positions.
        time_scale = rng.choice([100.0, 200.0, 400.0])
        syscall_scale = rng.choice([10.0, 25.0, 50.0])
        seed = rng.randrange(1, 10_000)
        cases.append((preset, predictor, kind, time_scale, syscall_scale,
                      seed))
    return cases


def _sample_boundary_cases():
    rng = random.Random(MASTER_SEED ^ 0xB0B)
    cases = []
    for i in range(N_BOUNDARY_CASES):
        preset = PRESETS[i % len(PRESETS)] if i < len(PRESETS) \
            else rng.choice(PRESETS)
        predictor = rng.choice(["tage", "gshare"])
        workload = rng.choice(WORKLOADS)
        # Random (co-prime-ish) switch/rekey periods and thread interleave.
        switch_every = rng.choice([37, 61, 97, 131])
        priv_every = rng.choice([23, 41, 53, 79])
        threads = rng.choice([1, 2])
        seed = rng.randrange(1, 10_000)
        cases.append((preset, predictor, workload, switch_every, priv_every,
                      threads, seed))
    return cases


ENGINE_CASES = _sample_engine_cases()
BOUNDARY_CASES = _sample_boundary_cases()


def _force_generic_dispatch(bpu):
    """Force every storage access onto the generic virtual dispatch."""
    bpu.force_generic_dispatch()


def _result_snapshot(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "threads": {
            name: (t.cycles, t.instructions, t.branches,
                   t.conditional_branches, t.direction_mispredicts,
                   t.target_mispredicts, t.btb_lookups, t.btb_hits,
                   t.syscalls, t.context_switches)
            for name, t in result.threads.items()},
    }


def _run_case(preset, predictor, kind, time_scale, syscall_scale, seed, *,
              engine, force_generic=False, backend=None):
    scale = ExperimentScale(
        time_scale=time_scale, smt_time_scale=2 * time_scale,
        syscall_time_scale=syscall_scale,
        st_target_branches=1_500, st_warmup_branches=400,
        smt_instructions=15_000, smt_warmup_instructions=4_000, seed=seed)
    if kind == "single":
        config = fpga_prototype(predictor)
        workloads = make_pair_workloads(
            SINGLE_THREAD_PAIRS[seed % len(SINGLE_THREAD_PAIRS)],
            seed=scale.seed)
        bpu = build_bpu(config, preset, seed=scale.seed + 1)
        if force_generic:
            _force_generic_dispatch(bpu)
        core = SingleThreadCore(config, bpu, workloads,
                                time_scale=scale.time_scale,
                                syscall_time_scale=scale.syscall_time_scale,
                                backend=backend)
        return core.run(target_branches=scale.st_target_branches,
                        warmup_branches=scale.st_warmup_branches,
                        mechanism_name=preset, engine=engine)
    config = sunny_cove_smt(predictor)
    workloads = make_pair_workloads(SMT2_PAIRS[seed % len(SMT2_PAIRS)],
                                    seed=scale.seed)
    bpu = build_bpu(config, preset, seed=scale.seed + 1)
    if force_generic:
        _force_generic_dispatch(bpu)
    core = SmtCore(config, bpu, workloads, time_scale=scale.smt_time_scale,
                   se_mode=bool(seed % 2), backend=backend)
    return core.run(instructions=scale.smt_instructions,
                    warmup_instructions=scale.smt_warmup_instructions,
                    mechanism_name=preset, engine=engine)


class TestEngineDifferential:
    """scalar vs batched vs forced-generic-batched over sampled configs."""

    @pytest.mark.parametrize(
        "case", ENGINE_CASES,
        ids=[f"{c[0]}-{c[1]}-{c[2]}-s{c[5]}" for c in ENGINE_CASES])
    def test_three_way_engine_parity(self, case):
        scalar = _result_snapshot(_run_case(*case, engine="scalar"))
        batched = _result_snapshot(_run_case(*case, engine="batched"))
        generic = _result_snapshot(_run_case(*case, engine="batched",
                                             force_generic=True))
        assert batched == scalar
        assert generic == scalar


@pytest.mark.skipif(not _HAS_NUMPY, reason="numpy backend unavailable")
class TestBackendDifferential:
    """python vs numpy execution backend over the same sampled configs.

    The numpy backend swaps the kernel-resolution strategy underneath the
    batched engine; every sampled case must produce the identical result
    snapshot, both on the vectorized fast paths and with the storage forced
    onto the generic dispatch (where the backend must fall through to the
    untouched reference kernels).
    """

    @pytest.mark.parametrize(
        "case", ENGINE_CASES,
        ids=[f"{c[0]}-{c[1]}-{c[2]}-s{c[5]}" for c in ENGINE_CASES])
    def test_numpy_backend_parity(self, case):
        python = _result_snapshot(
            _run_case(*case, engine="batched", backend="python"))
        vectorized = _result_snapshot(
            _run_case(*case, engine="batched", backend="numpy"))
        fallthrough = _result_snapshot(
            _run_case(*case, engine="batched", backend="numpy",
                      force_generic=True))
        assert vectorized == python
        # Forced-generic dispatch equals the fast paths equals the python
        # backend (the generic-vs-scalar leg is pinned above), so a single
        # three-way equality closes the square.
        assert fallthrough == python


def _raw_state(bpu):
    """Raw (still encoded) storage of every predictor structure."""
    return ([list(table.rows()) for table in bpu.direction.tables()],
            bpu.btb.raw_sets())


def _stats_state(bpu, threads):
    return [
        (bpu.direction.stats(t).lookups, bpu.direction.stats(t).mispredictions)
        for t in range(threads)
    ] + [(bpu.btb.lookups, bpu.btb.hits)]


class TestSwitchBoundaryDifferential:
    """Fast paths vs forced-generic dispatch, checked at every boundary.

    Both systems execute the same randomized record stream with interleaved
    context switches and privilege-switch (rekey) pairs; at *every* boundary
    the raw storage bits and the statistics must already be identical, not
    just at the end of the run.
    """

    @pytest.mark.parametrize(
        "case", BOUNDARY_CASES,
        ids=[f"{c[0]}-{c[1]}-{c[2]}-t{c[5]}-s{c[6]}" for c in BOUNDARY_CASES])
    def test_raw_storage_identical_at_every_boundary(self, case):
        (preset, predictor, workload, switch_every, priv_every, threads,
         seed) = case
        records = make_workload(workload, seed=seed).segment(1_200)
        fast = make_bpu(predictor, preset, seed=seed + 1)
        slow = make_bpu(predictor, preset, seed=seed + 1)
        _force_generic_dispatch(slow)

        boundaries = 0
        for i, record in enumerate(records):
            thread = i % threads
            out_fast = fast.execute_branch_fast(
                record.pc, record.taken, record.target, record.branch_type,
                thread)
            out_slow = slow.execute_branch_fast(
                record.pc, record.taken, record.target, record.branch_type,
                thread)
            assert out_fast == out_slow, f"outcome diverged at record {i}"
            at_boundary = False
            if i % priv_every == 0:
                for bpu in (fast, slow):
                    bpu.notify_privilege_switch(thread, Privilege.KERNEL)
                    bpu.notify_privilege_switch(thread, Privilege.USER)
                at_boundary = True
            if i % switch_every == 0:
                for bpu in (fast, slow):
                    bpu.notify_context_switch(thread)
                at_boundary = True
            if at_boundary:
                boundaries += 1
                assert _stats_state(fast, threads) == \
                    _stats_state(slow, threads), f"stats diverged at {i}"
                assert _raw_state(fast) == _raw_state(slow), \
                    f"raw storage diverged at boundary after record {i}"
        assert boundaries > 10  # the schedule really exercised boundaries
        assert _raw_state(fast) == _raw_state(slow)
