"""Batched-engine parity: the fast engine must be bit-identical to the
scalar reference loop.

The batched engine restructures the hot path (tuple trace batches, fused
predictor execute, inline timing arithmetic, due-checked OS events) but must
not change a single statistic: these tests run both engines on freshly built
systems with the same seeds and compare every field of the resulting
:class:`repro.cpu.stats.RunResult`, across the baseline, an encoding preset
and a flush preset, on both core models and for the default (TAGE /
TAGE-SC-L) and Gshare predictors.
"""

import pytest

from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.cpu.core import SingleThreadCore, record_batch_stream
from repro.cpu.smt import SmtCore
from repro.experiments.runner import build_bpu
from repro.experiments.scaling import ExperimentScale
from repro.predictors.tage import TageConfig
from repro.workloads import SINGLE_THREAD_PAIRS, SMT2_PAIRS, make_pair_workloads
from repro.workloads.generator import make_workload

#: Small but non-trivial budgets: enough branches for context switches,
#: syscalls, warm-up resets and (for flush presets) several flushes.
SCALE = ExperimentScale(
    time_scale=200.0, smt_time_scale=400.0, syscall_time_scale=25.0,
    st_target_branches=3_000, st_warmup_branches=800,
    smt_instructions=30_000, smt_warmup_instructions=8_000, seed=2021)

#: Baseline + one encoding-based + one flush-based preset (distinct engine
#: fast-path behaviour: passthrough, encode/decode dispatch, owner-agnostic
#: flushes), plus precise_flush to cover owner tracking and noisy_xor_bp to
#: cover index randomization (the only policy overriding map_index).
PRESETS = ["baseline", "xor_bp", "complete_flush", "precise_flush",
           "noisy_xor_bp"]


def _snapshot(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "threads": {
            name: (t.cycles, t.instructions, t.branches,
                   t.conditional_branches, t.direction_mispredicts,
                   t.target_mispredicts, t.btb_lookups, t.btb_hits,
                   t.syscalls, t.context_switches)
            for name, t in result.threads.items()},
    }


def _single_thread(preset, engine, predictor=None):
    config = fpga_prototype() if predictor is None else fpga_prototype(predictor)
    workloads = make_pair_workloads(SINGLE_THREAD_PAIRS[0], seed=SCALE.seed)
    bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
    core = SingleThreadCore(config, bpu, workloads,
                            time_scale=SCALE.time_scale,
                            syscall_time_scale=SCALE.syscall_time_scale)
    return core.run(target_branches=SCALE.st_target_branches,
                    warmup_branches=SCALE.st_warmup_branches,
                    mechanism_name=preset, engine=engine)


def _smt(preset, engine, predictor=None, se_mode=True):
    config = (sunny_cove_smt() if predictor is None
              else sunny_cove_smt(predictor))
    workloads = make_pair_workloads(SMT2_PAIRS[0], seed=SCALE.seed)
    bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
    core = SmtCore(config, bpu, workloads, time_scale=SCALE.smt_time_scale,
                   se_mode=se_mode)
    return core.run(instructions=SCALE.smt_instructions,
                    warmup_instructions=SCALE.smt_warmup_instructions,
                    mechanism_name=preset, engine=engine)


class TestSingleThreadParity:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_batched_matches_scalar(self, preset):
        scalar = _single_thread(preset, "scalar")
        batched = _single_thread(preset, "batched")
        assert _snapshot(batched) == _snapshot(scalar)

    # gshare has its own fused execute; tournament and bimodal take the
    # generic DirectionPredictor.execute fallback path.
    @pytest.mark.parametrize("predictor", ["gshare", "tournament", "bimodal"])
    def test_other_predictor_parity(self, predictor):
        scalar = _single_thread("baseline", "scalar", predictor=predictor)
        batched = _single_thread("baseline", "batched", predictor=predictor)
        assert _snapshot(batched) == _snapshot(scalar)

    def test_tage_useful_reset_parity(self):
        # A reset period far below the branch budget forces many graceful
        # useful-counter resets inside both the warm-up and measured phases,
        # exercising the fused execute()'s reset_fired provider re-read path
        # (the default 1<<18 period never fires at these test budgets).
        def run(engine):
            config = fpga_prototype(
                "tage", config=TageConfig(useful_reset_period=512))
            workloads = make_pair_workloads(SINGLE_THREAD_PAIRS[0],
                                            seed=SCALE.seed)
            bpu = build_bpu(config, "baseline", seed=SCALE.seed + 1)
            core = SingleThreadCore(config, bpu, workloads,
                                    time_scale=SCALE.time_scale,
                                    syscall_time_scale=SCALE.syscall_time_scale)
            return core.run(target_branches=SCALE.st_target_branches,
                            warmup_branches=SCALE.st_warmup_branches,
                            mechanism_name="baseline", engine=engine)

        assert _snapshot(run("batched")) == _snapshot(run("scalar"))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _single_thread("baseline", "vectorised")


class TestSmtParity:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_batched_matches_scalar(self, preset):
        scalar = _smt(preset, "scalar")
        batched = _smt(preset, "batched")
        assert _snapshot(batched) == _snapshot(scalar)

    def test_full_system_mode_parity(self):
        # se_mode=False exercises the per-thread syscall path.
        scalar = _smt("xor_bp", "scalar", se_mode=False)
        batched = _smt("xor_bp", "batched", se_mode=False)
        assert _snapshot(batched) == _snapshot(scalar)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _smt("baseline", "vectorised")


class TestBpuFastPathParity:
    def test_execute_branch_fast_matches_execute_branch(self):
        # The engines inline the conditional arm of execute_branch_fast, so
        # this drives the method itself over every branch type against the
        # BranchOutcome reference path to pin it from drifting.
        config = fpga_prototype()
        records = make_workload("gcc", seed=9).segment(2_000)
        ref_bpu = build_bpu(config, "baseline", seed=11)
        fast_bpu = build_bpu(config, "baseline", seed=11)
        for record in records:
            ref = ref_bpu.execute_branch(record.pc, record.taken,
                                         record.target, record.branch_type, 0)
            fast = fast_bpu.execute_branch_fast(record.pc, record.taken,
                                                record.target,
                                                record.branch_type, 0)
            assert fast == (ref.direction_mispredicted,
                            ref.target_mispredicted,
                            ref.btb_accessed, ref.btb_hit)
        assert (fast_bpu.direction.stats(0).mispredictions
                == ref_bpu.direction.stats(0).mispredictions)
        assert fast_bpu.btb.hits == ref_bpu.btb.hits


class TestTraceApiParity:
    def test_record_batches_match_records(self):
        workload = make_workload("gcc", seed=5)
        records = workload.segment(3_000, seed_offset=2)
        flat = []
        for batch in workload.record_batches(257, seed_offset=2):
            flat.extend(batch)
            if len(flat) >= 3_000:
                break
        for record, row in zip(records, flat):
            assert row == (record.pc, record.taken, record.target,
                           record.branch_type, record.instructions,
                           record.syscall_after)

    def test_batch_sizes_respect_minimum(self):
        workload = make_workload("milc", seed=1)
        stream = workload.record_batches(100)
        for _ in range(5):
            assert len(next(stream)) >= 100

    def test_fallback_wrapper_for_records_only_workloads(self):
        class RecordsOnly:
            def __init__(self, inner):
                self._inner = inner

            def records(self, seed_offset=0):
                return self._inner.records(seed_offset=seed_offset)

        workload = make_workload("gobmk", seed=3)
        native = record_batch_stream(workload, 128, seed_offset=1)
        wrapped = record_batch_stream(RecordsOnly(workload), 128, seed_offset=1)
        native_flat = []
        wrapped_flat = []
        while len(native_flat) < 1_000:
            native_flat.extend(next(native))
        while len(wrapped_flat) < 1_000:
            wrapped_flat.extend(next(wrapped))
        assert native_flat[:1_000] == wrapped_flat[:1_000]
