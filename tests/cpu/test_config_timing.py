"""Tests for core configurations, the timing model and scheduling events."""

import pytest

from repro.core.secure import BranchOutcome
from repro.cpu.config import (
    CORE_PRESETS,
    CoreConfig,
    fpga_prototype,
    make_core_config,
    sunny_cove_smt,
)
from repro.cpu.scheduler import PeriodicEvent, RoundRobinScheduler, SyscallModel
from repro.cpu.stats import RunResult, ThreadStats
from repro.cpu.timing import BranchTimingModel
from repro.types import BranchType
from repro.workloads import make_workload


class TestCoreConfig:
    def test_fpga_prototype_matches_table2(self):
        config = fpga_prototype()
        assert config.issue_width == 4
        assert config.pipeline_depth == 10
        assert config.btb_sets == 256 and config.btb_ways == 2
        assert config.smt_threads == 1
        assert config.predictor == "tage"

    def test_sunny_cove_matches_table2(self):
        config = sunny_cove_smt()
        assert config.issue_width == 8
        assert config.pipeline_depth == 19
        assert config.btb_sets == 1024 and config.btb_ways == 4
        assert config.smt_threads == 2
        assert config.predictor == "tage_sc_l"

    def test_with_predictor_returns_copy(self):
        config = sunny_cove_smt()
        other = config.with_predictor("gshare")
        assert other.predictor == "gshare"
        assert config.predictor == "tage_sc_l"

    def test_with_switch_interval(self):
        config = fpga_prototype().with_switch_interval(4_000_000)
        assert config.context_switch_interval == 4_000_000

    def test_scaled_divides_interval(self):
        config = fpga_prototype().scaled(100)
        assert config.context_switch_interval == 80_000

    def test_presets_registry(self):
        assert set(CORE_PRESETS) == {"fpga_prototype", "sunny_cove_smt"}
        assert make_core_config("fpga_prototype").name == "fpga_prototype"
        with pytest.raises(KeyError):
            make_core_config("pentium")


class TestTimingModel:
    def _outcome(self, **kwargs):
        defaults = dict(branch_type=BranchType.CONDITIONAL, taken=True,
                        predicted_taken=True, direction_mispredicted=False,
                        target_mispredicted=False, btb_accessed=True, btb_hit=True)
        defaults.update(kwargs)
        return BranchOutcome(**defaults)

    def test_correct_prediction_has_no_penalty(self):
        model = BranchTimingModel(fpga_prototype())
        assert model.branch_penalty(self._outcome()) == 0.0

    def test_direction_mispredict_costs_pipeline_penalty(self):
        config = fpga_prototype()
        model = BranchTimingModel(config)
        outcome = self._outcome(direction_mispredicted=True)
        assert model.branch_penalty(outcome) == config.mispredict_penalty

    def test_target_mispredict_costs_pipeline_penalty(self):
        config = fpga_prototype()
        model = BranchTimingModel(config)
        outcome = self._outcome(target_mispredicted=True)
        assert model.branch_penalty(outcome) == config.mispredict_penalty

    def test_btb_miss_on_taken_branch_costs_bubble(self):
        config = fpga_prototype()
        model = BranchTimingModel(config)
        outcome = self._outcome(btb_hit=False)
        assert model.branch_penalty(outcome) == config.btb_miss_penalty

    def test_btb_miss_on_not_taken_branch_is_free(self):
        model = BranchTimingModel(fpga_prototype())
        outcome = self._outcome(taken=False, btb_hit=False)
        assert model.branch_penalty(outcome) == 0.0

    def test_instruction_cost_scales_with_base_cpi(self):
        config = fpga_prototype()
        model = BranchTimingModel(config)
        assert model.instruction_cost(100) == pytest.approx(100 * config.base_cpi)

    def test_record_cost_is_sum(self):
        config = fpga_prototype()
        model = BranchTimingModel(config)
        outcome = self._outcome(direction_mispredicted=True)
        expected = 10 * config.base_cpi + config.mispredict_penalty
        assert model.record_cost(10, outcome) == pytest.approx(expected)


class TestPeriodicEvent:
    def test_fires_after_interval(self):
        event = PeriodicEvent(100.0)
        assert event.pending(50) == 0
        assert event.pending(150) == 1

    def test_multiple_fires_accumulate(self):
        event = PeriodicEvent(100.0)
        assert event.pending(450) == 4

    def test_disabled_event_never_fires(self):
        event = PeriodicEvent(None)
        assert event.pending(1e12) == 0

    def test_zero_interval_is_disabled(self):
        event = PeriodicEvent(0)
        assert event.pending(1e12) == 0

    def test_phase_offsets_first_fire(self):
        event = PeriodicEvent(100.0, phase=50.0)
        assert event.pending(120) == 0
        assert event.pending(160) == 1

    def test_reset(self):
        event = PeriodicEvent(100.0)
        event.pending(1000)
        event.reset(0.0)
        assert event.pending(50) == 0
        assert event.pending(150) == 1


class TestRoundRobinScheduler:
    def test_switches_in_order(self):
        scheduler = RoundRobinScheduler(3, 100.0)
        assert scheduler.current == 0
        scheduler.maybe_switch(150)
        assert scheduler.current == 1
        scheduler.maybe_switch(250)
        assert scheduler.current == 2
        scheduler.maybe_switch(350)
        assert scheduler.current == 0

    def test_counts_switches(self):
        scheduler = RoundRobinScheduler(2, 100.0)
        scheduler.maybe_switch(500)
        assert scheduler.switches >= 1

    def test_requires_at_least_one_context(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(0, 100.0)


class TestSyscallModel:
    def test_interval_derived_from_profile_rate(self):
        workload = make_workload("gcc")  # 6.0 transitions per M cycles
        model = SyscallModel(workload, time_scale=1.0)
        # 2e6 / 6.0 cycles between syscalls.
        assert model.event.interval == pytest.approx(2e6 / 6.0)

    def test_time_scale_shrinks_interval(self):
        workload = make_workload("gcc")
        scaled = SyscallModel(workload, time_scale=100.0)
        assert scaled.event.interval == pytest.approx(2e4 / 6.0)

    def test_due_counts_syscalls(self):
        workload = make_workload("gcc")
        model = SyscallModel(workload, time_scale=100.0)
        assert model.due(1e6) > 0


class TestStatsContainers:
    def test_thread_stats_derived_metrics(self):
        stats = ThreadStats(name="x", instructions=2000, branches=300,
                            conditional_branches=250, direction_mispredicts=25,
                            target_mispredicts=5, btb_lookups=100, btb_hits=90,
                            cycles=1000.0)
        assert stats.mispredicts == 30
        assert stats.mpki == pytest.approx(15.0)
        assert stats.direction_accuracy == pytest.approx(0.9)
        assert stats.btb_hit_rate == pytest.approx(0.9)
        assert stats.ipc == pytest.approx(2.0)

    def test_empty_stats_are_safe(self):
        stats = ThreadStats()
        assert stats.mpki == 0.0
        assert stats.direction_accuracy == 1.0
        assert stats.btb_hit_rate == 1.0
        assert stats.ipc == 0.0

    def test_run_result_overhead(self):
        base = RunResult(cycles=1000.0,
                         threads={"a": ThreadStats(name="a", cycles=600.0)})
        other = RunResult(cycles=1100.0,
                          threads={"a": ThreadStats(name="a", cycles=690.0)})
        assert other.overhead_vs(base) == pytest.approx(0.10)
        assert other.overhead_vs(base, workload="a") == pytest.approx(0.15)

    def test_run_result_rates(self):
        result = RunResult(cycles=1e6, instructions=2_000_000,
                           privilege_switches=100, time_scale=10.0)
        assert result.ipc == pytest.approx(2.0)
        assert result.privilege_switches_per_million_cycles() == pytest.approx(10.0)
