"""Tests for per-thread key management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keys import KeyManager
from repro.types import Privilege


class TestKeyGeneration:
    def test_keys_are_created_lazily_per_thread(self):
        manager = KeyManager(seed=1)
        key0 = manager.master_key(0)
        key1 = manager.master_key(1)
        assert key0 != 0 and key1 != 0
        assert key0 != key1

    def test_keys_are_reproducible_for_a_seed(self):
        assert KeyManager(seed=42).master_key(0) == KeyManager(seed=42).master_key(0)

    def test_different_seeds_give_different_keys(self):
        assert KeyManager(seed=1).master_key(0) != KeyManager(seed=2).master_key(0)

    def test_key_is_stable_between_switches(self):
        manager = KeyManager(seed=1)
        assert manager.master_key(0) == manager.master_key(0)

    def test_minimum_key_width_enforced(self):
        with pytest.raises(ValueError):
            KeyManager(key_bits=4)

    @given(st.integers(min_value=1, max_value=96))
    @settings(max_examples=30)
    def test_content_key_fits_requested_width(self, width):
        manager = KeyManager(seed=3)
        assert 0 <= manager.content_key(0, width) < (1 << width)

    @given(st.integers(min_value=1, max_value=96))
    @settings(max_examples=30)
    def test_index_key_fits_requested_width(self, width):
        manager = KeyManager(seed=3)
        assert 0 <= manager.index_key(0, width) < (1 << width)

    def test_content_and_index_keys_differ(self):
        manager = KeyManager(seed=3)
        assert manager.content_key(0, 32) != manager.index_key(0, 32)

    def test_derived_keys_differ_per_salt(self):
        manager = KeyManager(seed=3)
        assert manager.derived_key(0, 1, 32) != manager.derived_key(0, 2, 32)

    def test_zero_width_key_is_zero(self):
        assert KeyManager(seed=3).content_key(0, 0) == 0


class TestSwitchDrivenRotation:
    def test_context_switch_rotates_key(self):
        manager = KeyManager(seed=1)
        before = manager.master_key(0)
        manager.on_context_switch(0)
        assert manager.master_key(0) != before
        assert manager.generation(0) == 1

    def test_context_switch_only_affects_that_thread(self):
        manager = KeyManager(seed=1)
        other_before = manager.master_key(1)
        manager.on_context_switch(0)
        assert manager.master_key(1) == other_before

    def test_privilege_switch_rotates_key(self):
        manager = KeyManager(seed=1)
        before = manager.master_key(0)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        assert manager.master_key(0) != before
        assert manager.privilege_of(0) is Privilege.KERNEL

    def test_same_privilege_does_not_rotate(self):
        manager = KeyManager(seed=1)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        generation = manager.generation(0)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        assert manager.generation(0) == generation

    def test_privilege_rotation_can_be_disabled(self):
        manager = KeyManager(seed=1, rotate_on_privilege_switch=False)
        before = manager.master_key(0)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        assert manager.master_key(0) == before
        assert manager.privilege_switches == 1

    def test_switch_counters(self):
        manager = KeyManager(seed=1)
        manager.on_context_switch(0)
        manager.on_context_switch(0)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        assert manager.context_switches == 2
        assert manager.privilege_switches == 1

    def test_event_recording(self):
        manager = KeyManager(seed=1, record_events=True)
        manager.on_context_switch(0)
        manager.on_privilege_switch(0, Privilege.KERNEL)
        assert len(manager.events) == 2
        assert manager.events[0].reason == "context_switch"
        assert manager.events[1].reason == "privilege_switch"

    def test_reset_clears_state(self):
        manager = KeyManager(seed=1)
        manager.on_context_switch(0)
        manager.reset()
        assert manager.context_switches == 0
        assert manager.generation(0) == 0

    def test_keys_differ_across_generations(self):
        manager = KeyManager(seed=1)
        keys = set()
        for _ in range(20):
            keys.add(manager.master_key(0))
            manager.rotate(0)
        assert len(keys) == 20
