"""Tests for the branch prediction unit wrapper and the configuration registry."""

import pytest

from repro.core.registry import (
    PROTECTION_PRESETS,
    make_bpu,
    make_isolation,
    preset_names,
    resolve_preset,
)
from repro.core.secure import BranchOutcome
from repro.types import BranchType, Privilege


class TestBranchPredictionUnit:
    def test_conditional_branch_flow(self):
        bpu = make_bpu("bimodal", "baseline")
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert isinstance(outcome, BranchOutcome)
        assert outcome.btb_accessed

    def test_conditional_learns_direction_and_target(self):
        bpu = make_bpu("bimodal", "baseline")
        for _ in range(6):
            bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert not outcome.mispredicted

    def test_btb_miss_forces_fall_through_policy(self):
        bpu = make_bpu("bimodal", "baseline", btb_miss_forces_not_taken=True)
        # Train the direction predictor without installing a BTB entry by
        # training a *different* aliasing branch... simpler: first execution
        # of a taken branch must fall through (BTB cold).
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert outcome.predicted_taken is False
        assert outcome.direction_mispredicted

    def test_gem5_policy_does_not_force_fall_through(self):
        bpu = make_bpu("bimodal", "baseline", btb_miss_forces_not_taken=False)
        for _ in range(4):
            bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        bpu.btb.flush()
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert outcome.predicted_taken is True
        assert not outcome.direction_mispredicted
        assert not outcome.btb_hit

    def test_indirect_branch_uses_btb(self):
        bpu = make_bpu("bimodal", "baseline")
        first = bpu.execute_branch(0x6000, True, 0x7000, BranchType.INDIRECT)
        assert first.target_mispredicted
        second = bpu.execute_branch(0x6000, True, 0x7000, BranchType.INDIRECT)
        assert not second.target_mispredicted

    def test_call_and_return_use_ras(self):
        bpu = make_bpu("bimodal", "baseline")
        bpu.execute_branch(0x6000, True, 0x9000, BranchType.CALL)
        outcome = bpu.execute_branch(0x9040, True, 0x6004, BranchType.RETURN)
        assert not outcome.target_mispredicted

    def test_return_with_empty_ras_mispredicts(self):
        bpu = make_bpu("bimodal", "baseline")
        outcome = bpu.execute_branch(0x9040, True, 0x6004, BranchType.RETURN)
        assert outcome.target_mispredicted

    def test_notifications_are_forwarded_and_counted(self):
        bpu = make_bpu("bimodal", "noisy_xor_bp")
        bpu.notify_context_switch(0)
        bpu.notify_privilege_switch(0, Privilege.KERNEL)
        assert bpu.context_switches == 1
        assert bpu.privilege_switches == 1

    def test_context_switch_invalidates_residual_state_under_xor(self):
        bpu = make_bpu("bimodal", "xor_bp")
        for _ in range(6):
            bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        bpu.notify_context_switch(0)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert outcome.mispredicted

    def test_context_switch_keeps_state_under_baseline(self):
        bpu = make_bpu("bimodal", "baseline")
        for _ in range(6):
            bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        bpu.notify_context_switch(0)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert not outcome.mispredicted

    def test_flush_and_reset_stats(self):
        bpu = make_bpu("bimodal", "baseline")
        bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        bpu.flush()
        bpu.reset_stats()
        assert bpu.direction.total_stats().lookups == 0
        assert bpu.btb.lookups == 0

    def test_mispredicted_property(self):
        outcome = BranchOutcome(BranchType.CONDITIONAL, True, True,
                                direction_mispredicted=False,
                                target_mispredicted=True)
        assert outcome.mispredicted


class TestRegistry:
    def test_all_presets_resolve(self):
        for name in preset_names():
            assert resolve_preset(name).name == name

    def test_paper_aliases(self):
        assert resolve_preset("CF").name == "complete_flush"
        assert resolve_preset("PF").name == "precise_flush"
        assert resolve_preset("Noisy-XOR-BP").name == "noisy_xor_bp"

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            resolve_preset("quantum_flush")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(KeyError):
            make_isolation("quantum")

    @pytest.mark.parametrize("preset", sorted(PROTECTION_PRESETS))
    def test_every_preset_builds_a_working_bpu(self, preset):
        bpu = make_bpu("gshare", preset, btb_sets=64)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.CONDITIONAL)
        assert isinstance(outcome, BranchOutcome)
        bpu.notify_context_switch(0)
        bpu.notify_privilege_switch(0, Privilege.KERNEL)

    def test_btb_and_pht_share_one_key_manager(self):
        bpu = make_bpu("gshare", "noisy_xor_bp")
        mechanisms = bpu.isolation.mechanisms
        assert mechanisms[0].key_manager is mechanisms[1].key_manager

    def test_group_exposes_preset_name(self):
        bpu = make_bpu("gshare", "noisy_xor_bp")
        assert bpu.isolation.name == "noisy_xor_bp"

    def test_config_overrides_change_encoder(self):
        bpu = make_bpu("bimodal", "xor_bp", config_overrides={"encoder": "sbox"})
        # The PHT mechanism should carry an S-box encoder.
        pht_mechanism = bpu.direction.isolation
        assert pht_mechanism.encoder.name == "sbox"

    def test_xor_pht_simple_disables_row_diversification(self):
        bpu = make_bpu("bimodal", "xor_pht_simple")
        assert bpu.direction.isolation._row_diversified is False

    def test_btb_only_preset_leaves_pht_unprotected(self):
        bpu = make_bpu("bimodal", "xor_btb")
        assert bpu.btb.isolation.protects_content
        assert not bpu.direction.isolation.protects_content

    def test_pht_only_preset_leaves_btb_unprotected(self):
        bpu = make_bpu("bimodal", "noisy_xor_pht")
        assert not bpu.btb.isolation.protects_content
        assert bpu.direction.isolation.protects_content

    def test_seed_controls_keys(self):
        a = make_bpu("bimodal", "xor_bp", seed=1)
        b = make_bpu("bimodal", "xor_bp", seed=1)
        c = make_bpu("bimodal", "xor_bp", seed=2)
        key = lambda bpu: bpu.isolation.key_manager.master_key(0)
        assert key(a) == key(b)
        assert key(a) != key(c)
