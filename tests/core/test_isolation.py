"""Tests for the isolation mechanisms attached to predictor storage."""

import pytest

from repro.core.encoding import SboxEncoder
from repro.core.isolation import (
    BaselineIsolation,
    CompleteFlushIsolation,
    NoisyXorIsolation,
    PreciseFlushIsolation,
    XorContentIsolation,
)
from repro.core.keys import KeyManager
from repro.predictors.table import PredictorTable
from repro.types import Privilege


class TestBaselineIsolation:
    def test_identity_transforms(self):
        iso = BaselineIsolation(KeyManager(seed=1))
        table = PredictorTable(16, 8, isolation=iso)
        assert iso.map_index(5, 4, 0, table) == 5
        assert iso.encode(0xAB, 8, 0, table, 5) == 0xAB
        assert iso.decode(0xAB, 8, 0, table, 5) == 0xAB

    def test_switches_do_not_change_behaviour(self):
        iso = BaselineIsolation(KeyManager(seed=1))
        table = PredictorTable(16, 8, isolation=iso)
        table.write(2, 7)
        iso.on_context_switch(0)
        iso.on_privilege_switch(0, Privilege.KERNEL)
        assert table.read(2) == 7

    def test_switches_are_counted(self):
        iso = BaselineIsolation(KeyManager(seed=1))
        iso.on_context_switch(0)
        iso.on_privilege_switch(0, Privilege.KERNEL)
        assert iso.key_manager.context_switches == 1
        assert iso.key_manager.privilege_switches == 1

    def test_flags(self):
        iso = BaselineIsolation()
        assert not iso.protects_content
        assert not iso.protects_index
        assert not iso.flush_based
        assert not iso.tracks_owner


class TestFlushMechanisms:
    def test_complete_flush_flushes_every_registered_table(self):
        iso = CompleteFlushIsolation(KeyManager(seed=1))
        tables = [PredictorTable(8, 8, isolation=iso) for _ in range(3)]
        for table in tables:
            table.write(1, 42)
        iso.on_context_switch(0)
        assert all(table.read(1) == 0 for table in tables)
        assert iso.flush_count == 1

    def test_complete_flush_ignores_privilege_by_default(self):
        iso = CompleteFlushIsolation(KeyManager(seed=1))
        table = PredictorTable(8, 8, isolation=iso)
        table.write(1, 42)
        iso.on_privilege_switch(0, Privilege.KERNEL)
        assert table.read(1) == 42

    def test_complete_flush_on_privilege_switch_when_enabled(self):
        iso = CompleteFlushIsolation(KeyManager(seed=1), flush_on_privilege_switch=True)
        table = PredictorTable(8, 8, isolation=iso)
        table.write(1, 42)
        iso.on_privilege_switch(0, Privilege.KERNEL)
        assert table.read(1) == 0

    def test_precise_flush_only_affects_switching_thread(self):
        iso = PreciseFlushIsolation(KeyManager(seed=1))
        table = PredictorTable(8, 8, isolation=iso)
        table.write(1, 42, thread_id=0)
        table.write(2, 24, thread_id=1)
        iso.on_context_switch(0)
        assert table.read(1, 0) == 0
        assert table.read(2, 1) == 24

    def test_precise_flush_tracks_owner(self):
        assert PreciseFlushIsolation(KeyManager()).tracks_owner

    def test_registering_same_structure_twice_is_idempotent(self):
        iso = CompleteFlushIsolation(KeyManager(seed=1))
        table = PredictorTable(8, 8, isolation=iso)
        iso.register_flushable(table)
        assert iso.flushables.count(table) == 1

    def test_flushable_without_flush_thread_still_supported(self):
        class OnlyFlush:
            def __init__(self):
                self.flushed = 0

            def flush(self):
                self.flushed += 1

        iso = PreciseFlushIsolation(KeyManager(seed=1))
        structure = OnlyFlush()
        iso.register_flushable(structure)
        iso.on_context_switch(0)
        assert structure.flushed == 1


class TestXorContentIsolation:
    def test_roundtrip_for_owner_thread(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 16, isolation=iso)
        encoded = iso.encode(0x1234, 16, 0, table, 3)
        assert encoded != 0x1234
        assert iso.decode(encoded, 16, 0, table, 3) == 0x1234

    def test_index_not_transformed(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 16, isolation=iso)
        assert iso.map_index(9, 4, 0, table) == 9

    def test_per_table_keys_differ(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table_a = PredictorTable(16, 16, name="a", isolation=iso)
        table_b = PredictorTable(16, 16, name="b", isolation=iso)
        assert iso.encode(0x1234, 16, 0, table_a, 3) != iso.encode(0x1234, 16, 0, table_b, 3)

    def test_row_diversification_changes_key_per_row(self):
        iso = XorContentIsolation(KeyManager(seed=2), row_diversified=True)
        table = PredictorTable(16, 16, isolation=iso)
        assert iso.encode(0x1234, 16, 0, table, 1) != iso.encode(0x1234, 16, 0, table, 2)

    def test_without_row_diversification_rows_share_key(self):
        iso = XorContentIsolation(KeyManager(seed=2), row_diversified=False)
        table = PredictorTable(16, 16, isolation=iso)
        assert iso.encode(0x1234, 16, 0, table, 1) == iso.encode(0x1234, 16, 0, table, 2)

    def test_context_switch_changes_encoding(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 16, isolation=iso)
        before = iso.encode(0x1234, 16, 0, table, 3)
        iso.on_context_switch(0)
        assert iso.encode(0x1234, 16, 0, table, 3) != before

    def test_privilege_switch_changes_encoding(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 16, isolation=iso)
        before = iso.encode(0x1234, 16, 0, table, 3)
        iso.on_privilege_switch(0, Privilege.KERNEL)
        assert iso.encode(0x1234, 16, 0, table, 3) != before

    def test_other_threads_unaffected_by_switch(self):
        iso = XorContentIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 16, isolation=iso)
        before = iso.encode(0x1234, 16, 1, table, 3)
        iso.on_context_switch(0)
        assert iso.encode(0x1234, 16, 1, table, 3) == before

    def test_alternative_encoder_roundtrip(self):
        iso = XorContentIsolation(KeyManager(seed=2), encoder=SboxEncoder())
        table = PredictorTable(16, 16, isolation=iso)
        encoded = iso.encode(0x0FED, 16, 0, table, 0)
        assert iso.decode(encoded, 16, 0, table, 0) == 0x0FED

    def test_flags(self):
        iso = XorContentIsolation(KeyManager())
        assert iso.protects_content and not iso.protects_index


class TestNoisyXorIsolation:
    def test_index_is_remapped_per_thread(self):
        iso = NoisyXorIsolation(KeyManager(seed=5))
        table = PredictorTable(256, 8, isolation=iso)
        mapped0 = iso.map_index(10, 8, 0, table)
        mapped1 = iso.map_index(10, 8, 1, table)
        assert mapped0 != 10 or mapped1 != 10
        assert mapped0 != mapped1

    def test_mapping_is_a_bijection_per_thread(self):
        iso = NoisyXorIsolation(KeyManager(seed=5))
        table = PredictorTable(64, 8, isolation=iso)
        mapped = {iso.map_index(i, 6, 0, table) for i in range(64)}
        assert mapped == set(range(64))

    def test_mapping_changes_after_switch(self):
        iso = NoisyXorIsolation(KeyManager(seed=5))
        table = PredictorTable(256, 8, isolation=iso)
        before = iso.map_index(10, 8, 0, table)
        iso.on_context_switch(0)
        after = iso.map_index(10, 8, 0, table)
        # The key is random: allow the rare equal mapping but require the full
        # permutation to change.
        permutation_before = [before]
        assert any(iso.map_index(i, 8, 0, table) != (i ^ 10 ^ before)
                   for i in range(16)) or after != before

    def test_zero_width_index_untouched(self):
        iso = NoisyXorIsolation(KeyManager(seed=5))
        table = PredictorTable(2, 8, isolation=iso)
        assert iso.map_index(0, 0, 0, table) == 0

    def test_flags(self):
        iso = NoisyXorIsolation(KeyManager())
        assert iso.protects_content and iso.protects_index
