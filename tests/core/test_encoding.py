"""Tests (including property-based tests) for the reversible content encoders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    ENCODERS,
    SboxEncoder,
    ShiftXorEncoder,
    XorEncoder,
    make_encoder,
    stretch_key,
)

ALL_ENCODERS = [XorEncoder(), ShiftXorEncoder(), SboxEncoder()]


class TestStretchKey:
    def test_zero_key_stretches_to_zero(self):
        assert stretch_key(0, 32) == 0

    def test_zero_width(self):
        assert stretch_key(0xABCD, 0) == 0

    def test_narrow_key_repeats(self):
        assert stretch_key(0b1, 4) == 0b1111

    def test_wide_key_truncates(self):
        assert stretch_key(0xFFFF, 8) == 0xFF

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=80)
    def test_result_fits_width(self, key, width):
        assert 0 <= stretch_key(key, width) < (1 << width)


class TestEncoderBijectivity:
    @pytest.mark.parametrize("encoder", ALL_ENCODERS, ids=lambda e: e.name)
    @given(value=st.integers(min_value=0, max_value=(1 << 32) - 1),
           key=st.integers(min_value=0, max_value=(1 << 64) - 1),
           width=st.integers(min_value=1, max_value=48))
    @settings(max_examples=120)
    def test_decode_inverts_encode(self, encoder, value, key, width):
        value &= (1 << width) - 1
        encoded = encoder.encode(value, width, key)
        assert 0 <= encoded < (1 << width)
        assert encoder.decode(encoded, width, key) == value

    @pytest.mark.parametrize("encoder", ALL_ENCODERS, ids=lambda e: e.name)
    def test_exhaustive_bijection_on_small_width(self, encoder):
        for key in (0, 0x5A5A, 0xDEADBEEF):
            outputs = {encoder.encode(v, 8, key) for v in range(256)}
            assert len(outputs) == 256

    @pytest.mark.parametrize("encoder", ALL_ENCODERS, ids=lambda e: e.name)
    def test_zero_key_sbox_and_shift_still_reversible(self, encoder):
        for value in range(16):
            assert encoder.decode(encoder.encode(value, 4, 0), 4, 0) == value


class TestEncoderProperties:
    def test_xor_is_an_involution(self):
        encoder = XorEncoder()
        assert encoder.encode(0x1234, 16, 0xBEEF) == encoder.decode(0x1234, 16, 0xBEEF)

    def test_nonzero_key_changes_value(self):
        for encoder in ALL_ENCODERS:
            assert encoder.encode(0x1234, 16, 0xBEEF) != 0x1234

    def test_different_keys_give_different_encodings(self):
        for encoder in ALL_ENCODERS:
            a = encoder.encode(0x1234, 16, 0x1111)
            b = encoder.encode(0x1234, 16, 0x2222)
            assert a != b

    def test_sbox_breaks_xor_linearity(self):
        """For the S-box encoder, E(a)^E(b) generally differs from a^b."""
        encoder = SboxEncoder()
        key = 0x77
        a, b = 0x3C, 0xA5
        assert (encoder.encode(a, 8, key) ^ encoder.encode(b, 8, key)) != (a ^ b)

    def test_xor_keeps_linearity(self):
        encoder = XorEncoder()
        key = 0x77
        a, b = 0x3C, 0xA5
        assert (encoder.encode(a, 8, key) ^ encoder.encode(b, 8, key)) == (a ^ b)

    def test_cost_model_hooks(self):
        assert XorEncoder().xor_gates(32) == 32
        assert XorEncoder().extra_levels() == 0
        assert ShiftXorEncoder().extra_levels() == 1
        assert SboxEncoder().extra_levels() == 1


class TestEncoderRegistry:
    def test_all_registered_encoders_construct(self):
        for name in ENCODERS:
            assert make_encoder(name).name == name

    def test_aliases_with_dashes(self):
        assert make_encoder("shift-xor").name == "shift_xor"

    def test_unknown_encoder_rejected(self):
        with pytest.raises(KeyError):
            make_encoder("aes")
