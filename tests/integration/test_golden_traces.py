"""Golden-trace regression fixtures for the paper's figure pipelines.

Engine rewrites in this repo must be *bit-identical*: the batched engine, the
generated predictor kernels and the packed storage layouts all promise the
same statistics as the scalar reference loop.  The parity suites check that
promise pairwise within one revision; these fixtures pin it **across**
revisions.  Each fixture is a small deterministic snapshot of one figure
driver (Figure 1, Figure 2 and Figure 8 at smoke scale) committed under
``tests/integration/golden/``; the test recomputes the figure and compares
the result exactly — every float, every rendered row.  A kernel or storage
rewrite that silently shifts any paper result fails here even if it is
self-consistent across its own engines.

Regenerating (only legitimate after an *intentional* statistics change, e.g.
a new workload RNG schedule — bump ``ENGINE_VERSION`` in the same commit)::

    PYTHONPATH=src python tests/integration/test_golden_traces.py --regen
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.experiments import fig1_flush_single, fig2_flush_smt, fig8_xor_pht
from repro.experiments.scaling import ExperimentScale
from repro.workloads.pairs import SINGLE_THREAD_PAIRS, SMT2_PAIRS, SMT4_QUADS

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: Fixed smoke scale: small enough to run in CI, large enough for several
#: context switches, syscalls and warm-up resets per case.  Never derived
#: from ``REPRO_SCALE`` — fixtures must not depend on the environment.
GOLDEN_SCALE = ExperimentScale(
    time_scale=200.0, smt_time_scale=600.0, syscall_time_scale=25.0,
    st_target_branches=2_000, st_warmup_branches=500,
    smt_instructions=20_000, smt_warmup_instructions=5_000, seed=2021)


def _snapshot(result):
    """JSON-stable snapshot of one figure driver's output.

    Floats are kept as-is: ``json`` serialises them with shortest-round-trip
    ``repr``, so dump → load → compare is exact, and any change in simulated
    cycle counts (however small) changes the snapshot.
    """
    figure = result.figure
    return {
        "name": result.name,
        "categories": list(figure.categories),
        "series": {label: list(values)
                   for label, values in figure.series.items()},
        "rows": [[str(cell) for cell in row] for row in result.rows],
    }


def _fig1():
    return fig1_flush_single.run(scale=GOLDEN_SCALE,
                                 pairs=SINGLE_THREAD_PAIRS[:2])


def _fig2():
    return fig2_flush_smt.run(scale=GOLDEN_SCALE,
                              smt2_pairs=SMT2_PAIRS[:1],
                              smt4_quads=SMT4_QUADS[:1])


def _fig8():
    return fig8_xor_pht.run(scale=GOLDEN_SCALE,
                            pairs=SINGLE_THREAD_PAIRS[:2],
                            intervals=["8M"])


RUNNERS = {"fig1": _fig1, "fig2": _fig2, "fig8": _fig8}


def _golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_figure_matches_golden_trace(name):
    with open(_golden_path(name), "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    actual = _snapshot(RUNNERS[name]())
    assert actual == expected, (
        f"{name} drifted from its golden trace; if the statistics change is "
        "intentional, bump ENGINE_VERSION and regenerate with "
        "`PYTHONPATH=src python tests/integration/test_golden_traces.py "
        "--regen`")


def _regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, runner in sorted(RUNNERS.items()):
        path = _golden_path(name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_snapshot(runner()), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" not in sys.argv[1:]:
        sys.exit("refusing to overwrite golden traces without --regen")
    _regenerate()
