"""End-to-end invariants tying the whole system together.

These tests encode the paper's qualitative claims as executable checks:
isolation mechanisms trade a bounded amount of prediction accuracy for
security, residual state is worthless after a key change, and the protected
system still behaves like a branch predictor (it learns, it warms up, its
misprediction penalty shows up in cycles).
"""

import pytest

from repro.core.registry import PROTECTION_PRESETS, make_bpu
from repro.cpu import SingleThreadCore, SmtCore, fpga_prototype, sunny_cove_smt
from repro.types import BranchType, Privilege
from repro.workloads import get_pair, make_pair_workloads, make_workload


def _build(config, preset, seed=11):
    return make_bpu(config.predictor, preset, seed=seed,
                    btb_sets=config.btb_sets, btb_ways=config.btb_ways,
                    btb_miss_forces_not_taken=config.btb_miss_forces_not_taken,
                    predictor_kwargs=dict(config.predictor_kwargs))


class TestAccuracyUnderIsolation:
    @pytest.mark.parametrize("preset", sorted(PROTECTION_PRESETS))
    def test_protected_predictor_still_learns_a_single_benchmark(self, preset):
        """Without OS events, every mechanism predicts as well as the baseline."""
        config = fpga_prototype("gshare")
        bpu = _build(config, preset)
        workload = make_workload("hmmer", seed=2)
        mispredicts = 0
        conditional = 0
        for record in workload.segment(4000):
            outcome = bpu.execute_branch(record.pc, record.taken, record.target,
                                         record.branch_type)
            if record.branch_type is BranchType.CONDITIONAL:
                conditional += 1
                mispredicts += outcome.direction_mispredicted
        assert 1 - mispredicts / conditional > 0.80

    def test_key_rotation_costs_accuracy_only_transiently(self):
        config = fpga_prototype("gshare")
        bpu = _build(config, "noisy_xor_bp")
        workload = make_workload("hmmer", seed=2)
        records = workload.segment(6000)
        # Warm up, rotate, then measure the recovery window.
        for record in records[:3000]:
            bpu.execute_branch(record.pc, record.taken, record.target,
                               record.branch_type)
        bpu.notify_context_switch(0)
        early = sum(bpu.execute_branch(r.pc, r.taken, r.target, r.branch_type)
                    .direction_mispredicted
                    for r in records[3000:3500] if r.branch_type is BranchType.CONDITIONAL)
        late = sum(bpu.execute_branch(r.pc, r.taken, r.target, r.branch_type)
                   .direction_mispredicted
                   for r in records[5500:6000] if r.branch_type is BranchType.CONDITIONAL)
        assert late <= early


class TestSingleThreadOverheadShape:
    @pytest.fixture(scope="class")
    def overheads(self):
        config = fpga_prototype("gshare", n_entries=4096)
        pair = get_pair("case6", "single")
        results = {}
        for preset in ("baseline", "xor_btb", "noisy_xor_bp", "complete_flush"):
            workloads = make_pair_workloads(pair, seed=5)
            core = SingleThreadCore(config, _build(config, preset), workloads,
                                    time_scale=400.0, syscall_time_scale=50.0)
            results[preset] = core.run(target_branches=8000, warmup_branches=2000,
                                       mechanism_name=preset)
        base = results["baseline"]
        return {preset: result.overhead_vs(base, workload=pair.target)
                for preset, result in results.items()}

    def test_baseline_is_reference(self, overheads):
        assert overheads["baseline"] == 0.0

    def test_all_mechanisms_cost_single_digit_relative_overhead(self, overheads):
        for preset, value in overheads.items():
            assert value < 0.25, (preset, value)

    def test_btb_only_protection_is_cheaper_than_full_protection(self, overheads):
        assert overheads["xor_btb"] <= overheads["noisy_xor_bp"] + 0.01


class TestSmtOverheadShape:
    def test_gshare_smt_ordering_matches_paper(self):
        """On the SMT core with Gshare, Noisy-XOR-BP costs less than flushing."""
        config = sunny_cove_smt("gshare", 2)
        pair = get_pair("case9", "smt2")
        results = {}
        for preset in ("baseline", "complete_flush", "noisy_xor_bp"):
            workloads = make_pair_workloads(pair, seed=5)
            core = SmtCore(config, _build(config, preset), workloads,
                           time_scale=600.0)
            results[preset] = core.run(instructions=80_000,
                                       warmup_instructions=20_000,
                                       mechanism_name=preset)
        base = results["baseline"]
        cf = results["complete_flush"].overhead_vs(base)
        noisy = results["noisy_xor_bp"].overhead_vs(base)
        assert cf > 0.0
        assert noisy < cf


class TestSecurityPerformanceCoupling:
    def test_flush_based_protection_loses_cross_switch_state_and_xor_keeps_nothing_either(self):
        """After a context switch, neither CF nor XOR-BP lets the *same* thread
        reuse its own prior BTB entries (that is the point of the defence)."""
        for preset in ("complete_flush", "xor_bp"):
            bpu = make_bpu("bimodal", preset)
            bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
            bpu.notify_context_switch(0)
            outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
            assert outcome.target_mispredicted, preset

    def test_baseline_keeps_state_across_switches(self):
        bpu = make_bpu("bimodal", "baseline")
        bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
        bpu.notify_context_switch(0)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
        assert not outcome.target_mispredicted

    def test_privilege_round_trip_invalidates_user_state_under_xor(self):
        bpu = make_bpu("bimodal", "noisy_xor_bp")
        bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
        bpu.notify_privilege_switch(0, Privilege.KERNEL)
        bpu.notify_privilege_switch(0, Privilege.USER)
        outcome = bpu.execute_branch(0x4000, True, 0x5000, BranchType.INDIRECT)
        assert outcome.target_mispredicted

    def test_table4_rate_emerges_from_simulation(self):
        """The measured privilege-switch rate tracks the profile's rate."""
        config = fpga_prototype("gshare")
        pair = get_pair("case6", "single")
        workloads = make_pair_workloads(pair, seed=5)
        core = SingleThreadCore(config, _build(config, "noisy_xor_bp"), workloads,
                                time_scale=100.0, syscall_time_scale=100.0)
        result = core.run(target_branches=8000, warmup_branches=0)
        rate = result.privilege_switches_per_million_cycles()
        assert rate == pytest.approx(1.6, rel=0.5)
