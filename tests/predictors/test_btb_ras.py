"""Tests for the branch target buffer and the return address stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.isolation import NoisyXorIsolation, PreciseFlushIsolation, XorContentIsolation
from repro.core.keys import KeyManager
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.ras import ReturnAddressStack
from repro.types import BranchType


class TestBtbBasics:
    def test_miss_on_empty(self):
        btb = BranchTargetBuffer(64, 2)
        assert not btb.lookup(0x4000).hit

    def test_hit_after_update(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x4000, 0x5000)
        result = btb.lookup(0x4000)
        assert result.hit and result.target == 0x5000

    def test_update_overwrites_same_branch(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x4000, 0x5000)
        btb.update(0x4000, 0x6000)
        assert btb.lookup(0x4000).target == 0x6000
        assert btb.valid_entry_count() == 1

    def test_different_tags_use_different_ways(self):
        btb = BranchTargetBuffer(64, 2)
        pc_a = 0x4000
        pc_b = pc_a + 64 * 4  # same set, different tag
        btb.update(pc_a, 0x1111)
        btb.update(pc_b, 0x2222)
        assert btb.lookup(pc_a).target == 0x1111
        assert btb.lookup(pc_b).target == 0x2222

    def test_lru_eviction_when_set_is_full(self):
        btb = BranchTargetBuffer(64, 2)
        stride = 64 * 4
        pcs = [0x4000 + i * stride for i in range(3)]
        btb.update(pcs[0], 0xA)
        btb.update(pcs[1], 0xB)
        btb.lookup(pcs[1])          # touch pcs[1] so pcs[0] is LRU
        btb.update(pcs[2], 0xC)     # evicts pcs[0]
        assert not btb.lookup(pcs[0]).hit
        assert btb.lookup(pcs[1]).hit
        assert btb.lookup(pcs[2]).hit

    def test_geometry_and_storage(self):
        btb = BranchTargetBuffer(256, 2, tag_bits=16, target_bits=32)
        assert btb.n_sets == 256
        assert btb.n_ways == 2
        assert btb.index_bits == 8
        assert btb.entry_bits == 1 + 3 + 16 + 32
        assert btb.storage_bits == 256 * 2 * (1 + 3 + 16 + 32)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100, 2)

    def test_hit_rate_statistics(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x4000, 0x5000)
        btb.lookup(0x4000)
        btb.lookup(0x8000)
        assert btb.lookups == 2 and btb.hits == 1
        assert btb.hit_rate == 0.5
        btb.reset_stats()
        assert btb.lookups == 0

    def test_flush_invalidates_all(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x4000, 0x5000)
        btb.flush()
        assert not btb.lookup(0x4000).hit
        assert btb.valid_entry_count() == 0

    def test_flush_thread_only_removes_that_owner(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x4000, 0x5000, thread_id=0)
        btb.update(0x8000, 0x9000, thread_id=1)
        btb.flush_thread(0)
        assert not btb.lookup(0x4000, 0).hit
        assert btb.lookup(0x8000, 1).hit

    def test_snapshot_is_independent_copy(self):
        btb = BranchTargetBuffer(16, 2)
        btb.update(0x4000, 0x5000)
        snapshot = btb.snapshot()
        btb.flush()
        assert any(e.valid for ways in snapshot for e in ways)

    @given(st.integers(min_value=0x1000, max_value=0xFFFFF0),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=50)
    def test_update_then_lookup_property(self, pc, target):
        pc &= ~0x3
        btb = BranchTargetBuffer(128, 2)
        btb.update(pc, target)
        result = btb.lookup(pc)
        assert result.hit and result.target == target & ((1 << 32) - 1)


class TestBtbWithIsolation:
    def test_same_thread_roundtrip_under_xor(self):
        btb = BranchTargetBuffer(64, 2, isolation=XorContentIsolation(KeyManager(seed=4)))
        btb.update(0x4000, 0x12345678, thread_id=0)
        result = btb.lookup(0x4000, thread_id=0)
        assert result.hit and result.target == 0x12345678

    def test_other_thread_cannot_reuse_entry_under_xor(self):
        btb = BranchTargetBuffer(64, 2, isolation=XorContentIsolation(KeyManager(seed=4)))
        btb.update(0x4000, 0x12345678, thread_id=0)
        assert not btb.lookup(0x4000, thread_id=1).hit

    def test_key_rotation_invalidates_residual_entries(self):
        iso = XorContentIsolation(KeyManager(seed=4))
        btb = BranchTargetBuffer(64, 2, isolation=iso)
        btb.update(0x4000, 0x12345678, thread_id=0)
        iso.on_context_switch(0)
        assert not btb.lookup(0x4000, thread_id=0).hit

    def test_index_randomisation_hides_set_mapping(self):
        iso = NoisyXorIsolation(KeyManager(seed=4))
        btb = BranchTargetBuffer(256, 2, isolation=iso)
        differing = sum(btb.set_of(0x4000 + 4 * i, 0) != btb.logical_set_of(0x4000 + 4 * i)
                        for i in range(64))
        assert differing > 32  # almost every index is remapped

    def test_owner_visibility_under_precise_flush(self):
        iso = PreciseFlushIsolation(KeyManager(seed=4))
        btb = BranchTargetBuffer(64, 2, isolation=iso)
        btb.update(0x4000, 0x5000, thread_id=1)
        assert not btb.lookup(0x4000, thread_id=0).hit
        assert btb.lookup(0x4000, thread_id=1).hit


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(8).pop() is None

    def test_overflow_wraps_and_keeps_most_recent(self):
        ras = ReturnAddressStack(4)
        for i in range(6):
            ras.push(0x1000 + i)
        assert ras.pop() == 0x1005
        assert ras.occupancy() == 3

    def test_per_thread_stacks(self):
        ras = ReturnAddressStack(8)
        ras.push(0xA, thread_id=0)
        ras.push(0xB, thread_id=1)
        assert ras.pop(thread_id=1) == 0xB
        assert ras.pop(thread_id=0) == 0xA

    def test_flush_thread(self):
        ras = ReturnAddressStack(8)
        ras.push(0xA, 0)
        ras.push(0xB, 1)
        ras.flush_thread(0)
        assert ras.pop(0) is None
        assert ras.pop(1) == 0xB

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestBranchTypeHelpers:
    def test_conditional_uses_direction_predictor(self):
        assert BranchType.CONDITIONAL.uses_direction_predictor
        assert not BranchType.INDIRECT.uses_direction_predictor

    def test_return_uses_ras_not_btb(self):
        assert BranchType.RETURN.uses_ras
        assert not BranchType.RETURN.uses_btb

    def test_indirect_uses_btb(self):
        assert BranchType.INDIRECT.uses_btb
