"""Tests for the predictor storage layer (PredictorTable / PackedCounterTable)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.isolation import (
    CompleteFlushIsolation,
    NoisyXorIsolation,
    PreciseFlushIsolation,
    XorContentIsolation,
)
from repro.core.keys import KeyManager
from repro.predictors.table import (
    IdentityIsolation,
    PackedCounterTable,
    PredictorTable,
    TableIsolation,
)


class TestPredictorTableBasics:
    def test_initial_contents_are_reset_value(self):
        table = PredictorTable(16, 8, reset_value=3)
        assert all(table.read(i) == 3 for i in range(16))

    def test_write_then_read_roundtrip(self):
        table = PredictorTable(16, 8)
        table.write(5, 0xAB)
        assert table.read(5) == 0xAB

    def test_value_is_masked_to_entry_width(self):
        table = PredictorTable(16, 4)
        table.write(0, 0xFF)
        assert table.read(0) == 0xF

    def test_index_wraps_modulo_size(self):
        table = PredictorTable(16, 8)
        table.write(16 + 3, 0x42)
        assert table.read(3) == 0x42

    def test_geometry_properties(self):
        table = PredictorTable(64, 12, name="t")
        assert table.n_entries == 64
        assert table.entry_bits == 12
        assert table.index_bits == 6
        assert table.storage_bits == 64 * 12
        assert len(table) == 64

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PredictorTable(12, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            PredictorTable(16, 0)

    def test_reset_value_must_fit(self):
        with pytest.raises(ValueError):
            PredictorTable(16, 2, reset_value=7)

    def test_flush_restores_reset_value(self):
        table = PredictorTable(8, 8, reset_value=1)
        table.write(2, 200)
        table.flush()
        assert table.read(2) == 1

    def test_raw_access_bypasses_isolation(self):
        iso = XorContentIsolation(KeyManager(seed=5))
        table = PredictorTable(8, 8, isolation=iso)
        table.write(1, 0x55, thread_id=0)
        raw = table.read_raw(table.physical_index(1, 0))
        assert raw != 0x55  # stored encoded
        assert table.read(1, 0) == 0x55

    def test_write_raw(self):
        table = PredictorTable(8, 8)
        table.write_raw(3, 0x7F)
        assert table.read_raw(3) == 0x7F

    def test_default_isolation_is_identity(self):
        table = PredictorTable(8, 8)
        assert isinstance(table.isolation, TableIsolation)

    @given(st.integers(min_value=0, max_value=1023),
           st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=60)
    def test_roundtrip_property(self, index, value):
        table = PredictorTable(1024, 16)
        table.write(index, value)
        assert table.read(index) == value


class TestPredictorTableWithIsolation:
    def test_same_thread_roundtrip_under_content_encoding(self):
        iso = XorContentIsolation(KeyManager(seed=1))
        table = PredictorTable(32, 8, isolation=iso)
        table.write(7, 0x3C, thread_id=0)
        assert table.read(7, thread_id=0) == 0x3C

    def test_other_thread_reads_garbage_under_content_encoding(self):
        iso = XorContentIsolation(KeyManager(seed=1))
        table = PredictorTable(32, 32, isolation=iso)
        table.write(7, 0x12345678, thread_id=0)
        assert table.read(7, thread_id=1) != 0x12345678

    def test_key_rotation_invalidates_own_state(self):
        iso = XorContentIsolation(KeyManager(seed=1))
        table = PredictorTable(32, 32, isolation=iso)
        table.write(7, 0xDEADBEEF, thread_id=0)
        iso.on_context_switch(0)
        assert table.read(7, thread_id=0) != 0xDEADBEEF

    def test_index_randomisation_moves_entries(self):
        iso = NoisyXorIsolation(KeyManager(seed=3))
        table = PredictorTable(256, 8, isolation=iso)
        physical = table.physical_index(10, thread_id=0)
        assert 0 <= physical < 256
        # Different threads map the same logical index to different rows for
        # almost every key pair; allow the rare collision by checking several.
        collisions = sum(
            table.physical_index(i, 0) == table.physical_index(i, 1)
            for i in range(64))
        assert collisions < 16

    def test_roundtrip_under_index_randomisation(self):
        iso = NoisyXorIsolation(KeyManager(seed=3))
        table = PredictorTable(256, 8, isolation=iso)
        table.write(10, 0x5A, thread_id=0)
        assert table.read(10, thread_id=0) == 0x5A

    def test_complete_flush_on_context_switch(self):
        iso = CompleteFlushIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 8, reset_value=0, isolation=iso)
        table.write(3, 99)
        iso.on_context_switch(0)
        assert table.read(3) == 0

    def test_precise_flush_only_clears_owner(self):
        iso = PreciseFlushIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 8, reset_value=0, isolation=iso)
        table.write(3, 99, thread_id=0)
        table.write(4, 77, thread_id=1)
        iso.on_context_switch(0)
        assert table.read(3, 0) == 0
        assert table.read(4, 1) == 77

    def test_owner_tracking_hides_entries_from_other_threads(self):
        iso = PreciseFlushIsolation(KeyManager(seed=2))
        table = PredictorTable(16, 8, reset_value=0, isolation=iso)
        table.write(5, 123, thread_id=1)
        assert table.read(5, thread_id=0) == 0
        assert table.read(5, thread_id=1) == 123

    def test_owner_not_tracked_by_default(self):
        table = PredictorTable(16, 8)
        table.write(5, 1)
        assert table.owner_of(5) == -1

    def test_set_isolation_resets_contents(self):
        table = PredictorTable(16, 8, reset_value=2)
        table.write(1, 50)
        table.set_isolation(IdentityIsolation())
        assert table.read(1) == 2

    def test_flush_thread_without_owner_tracking_flushes_all(self):
        table = PredictorTable(16, 8, reset_value=0)
        table.write(1, 50)
        table.flush_thread(0)
        assert table.read(1) == 0


class TestPackedCounterTable:
    def test_counters_default_to_reset_value(self):
        pht = PackedCounterTable(64, 2, reset_value=1)
        assert all(pht.read(i) == 1 for i in range(64))

    def test_write_one_counter_does_not_disturb_neighbours(self):
        pht = PackedCounterTable(64, 2, word_bits=32, reset_value=1)
        pht.write(17, 3)
        assert pht.read(17) == 3
        assert pht.read(16) == 1
        assert pht.read(18) == 1

    def test_counters_per_word(self):
        pht = PackedCounterTable(64, 2, word_bits=32)
        assert pht.counters_per_word == 16
        assert pht.word_table.n_entries == 4

    def test_simple_granularity_uses_one_counter_per_word(self):
        pht = PackedCounterTable(64, 2, word_bits=2)
        assert pht.counters_per_word == 1

    def test_tiny_table_falls_back_to_single_counter_words(self):
        pht = PackedCounterTable(8, 2, word_bits=32)
        assert pht.counters_per_word == 1

    def test_flush(self):
        pht = PackedCounterTable(64, 2, reset_value=1)
        pht.write(5, 3)
        pht.flush()
        assert pht.read(5) == 1

    def test_word_bits_must_be_multiple_of_counter_bits(self):
        with pytest.raises(ValueError):
            PackedCounterTable(64, 3, word_bits=32)

    def test_storage_bits(self):
        pht = PackedCounterTable(4096, 2, word_bits=32)
        assert pht.storage_bits == 4096 * 2

    def test_len(self):
        assert len(PackedCounterTable(128, 2)) == 128

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40)
    def test_roundtrip_property(self, index, value):
        pht = PackedCounterTable(64, 2)
        pht.write(index, value)
        assert pht.read(index) == value

    def test_word_false_sharing_under_content_encoding(self):
        """A cross-thread write to the same word re-encodes the whole word."""
        iso = XorContentIsolation(KeyManager(seed=9))
        pht = PackedCounterTable(64, 2, word_bits=32, reset_value=1, isolation=iso)
        pht.write(0, 3, thread_id=0)
        pht.write(1, 3, thread_id=1)  # same physical word, other thread
        # Thread 0's counter was re-encoded under thread 1's key; thread 0 may
        # now read any value, but the structure must still be self-consistent
        # for thread 1.
        assert pht.read(1, thread_id=1) == 3
