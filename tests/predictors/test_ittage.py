"""Tests for the ITTAGE indirect-target predictor."""

import pytest

from repro.core import KeyManager, NoisyXorIsolation
from repro.predictors import IttagePredictor
from repro.predictors.ittage import IttagePrediction

_BRANCH_PC = 0x0040_3210
_TARGETS = [0x0041_0000, 0x0042_0040, 0x0043_0080, 0x0044_00C0]


def _train_monomorphic(predictor, target, rounds=50, thread_id=0):
    for _ in range(rounds):
        prediction = predictor.lookup(_BRANCH_PC, thread_id)
        predictor.update(_BRANCH_PC, target, prediction, thread_id)


class TestConstruction:
    def test_geometry(self):
        predictor = IttagePredictor(n_tables=4, table_entries=512)
        assert len(predictor.tables()) == 4
        assert len(predictor.history_lengths) == 4
        assert predictor.history_lengths == sorted(predictor.history_lengths)
        assert predictor.storage_bits == sum(t.storage_bits for t in predictor.tables())

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            IttagePredictor(n_tables=0)

    def test_empty_predictor_predicts_nothing(self):
        predictor = IttagePredictor()
        prediction = predictor.lookup(_BRANCH_PC)
        assert prediction.target is None
        assert prediction.provider == -1


class TestEntryPacking:
    def test_pack_unpack_round_trip(self):
        predictor = IttagePredictor()
        word = predictor._pack(tag=0x1A5, target=0x3FF_FFF0, confidence=3, useful=1)
        entry = predictor._unpack(word)
        assert entry == {"tag": 0x1A5, "target": 0x3FF_FFF0, "confidence": 3,
                         "useful": 1}

    def test_word_fits_table_width(self):
        predictor = IttagePredictor()
        word = predictor._pack(predictor._tag_mask, predictor._target_mask, 3, 1)
        assert word < (1 << predictor.tables()[0].entry_bits)


class TestLearning:
    def test_learns_monomorphic_target(self):
        predictor = IttagePredictor()
        _train_monomorphic(predictor, _TARGETS[0])
        prediction = predictor.lookup(_BRANCH_PC)
        assert prediction.target == _TARGETS[0]
        assert prediction.provider >= 0

    def test_confidence_grows_with_agreement(self):
        predictor = IttagePredictor()
        _train_monomorphic(predictor, _TARGETS[0], rounds=30)
        assert predictor.lookup(_BRANCH_PC).confidence > 0

    def test_relearns_after_target_change(self):
        predictor = IttagePredictor()
        _train_monomorphic(predictor, _TARGETS[0], rounds=30)
        _train_monomorphic(predictor, _TARGETS[1], rounds=60)
        assert predictor.lookup(_BRANCH_PC).target == _TARGETS[1]

    def test_history_correlated_targets(self):
        """A target that depends on recent history is captured by longer tables."""
        predictor = IttagePredictor(n_tables=4, table_entries=1024)
        correct = total = 0
        pattern = [True, True, False, True, False, False, True, False]
        for i in range(4000):
            direction = pattern[i % len(pattern)]
            target = _TARGETS[0] if direction else _TARGETS[1]
            prediction = predictor.lookup(_BRANCH_PC)
            if i > 2000:
                total += 1
                correct += prediction.target == target
            predictor.update(_BRANCH_PC, target, prediction, taken=direction)
        assert correct / total > 0.6

    def test_update_without_prediction_object(self):
        predictor = IttagePredictor()
        predictor.update(_BRANCH_PC, _TARGETS[0])
        assert isinstance(predictor.lookup(_BRANCH_PC), IttagePrediction)

    def test_per_thread_histories_are_separate(self):
        predictor = IttagePredictor()
        _train_monomorphic(predictor, _TARGETS[0], thread_id=0)
        # Thread 1 never trained the branch; its view stays empty or at least
        # does not inherit thread 0's confidence blindly.
        prediction = predictor.lookup(_BRANCH_PC, thread_id=1)
        assert prediction.target in (None, _TARGETS[0])


class TestFlushAndIsolation:
    def test_flush_clears_predictions(self):
        predictor = IttagePredictor()
        _train_monomorphic(predictor, _TARGETS[0])
        predictor.flush()
        assert predictor.lookup(_BRANCH_PC).target is None

    def test_noisy_xor_isolation_is_transparent_with_stable_key(self):
        isolation = NoisyXorIsolation(KeyManager(seed=5))
        predictor = IttagePredictor(isolation=isolation)
        _train_monomorphic(predictor, _TARGETS[0])
        assert predictor.lookup(_BRANCH_PC).target == _TARGETS[0]

    def test_key_rotation_invalidates_trained_targets(self):
        isolation = NoisyXorIsolation(KeyManager(seed=5))
        predictor = IttagePredictor(isolation=isolation)
        _train_monomorphic(predictor, _TARGETS[0])
        isolation.on_context_switch(0)
        prediction = predictor.lookup(_BRANCH_PC)
        # After the key change the stored tags decode to garbage: either no
        # component matches, or a chance match yields a garbage target.
        assert prediction.target != _TARGETS[0] or prediction.provider == -1

    def test_cross_thread_entries_unusable_under_isolation(self):
        isolation = NoisyXorIsolation(KeyManager(seed=5))
        predictor = IttagePredictor(isolation=isolation)
        _train_monomorphic(predictor, _TARGETS[0], thread_id=0)
        prediction = predictor.lookup(_BRANCH_PC, thread_id=1)
        assert prediction.target != _TARGETS[0] or prediction.provider == -1
