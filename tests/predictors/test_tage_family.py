"""Tests for TAGE, the loop predictor, the statistical corrector, LTAGE and TAGE-SC-L."""

import random

import pytest

from repro.predictors.loop import LoopPredictor
from repro.predictors.ltage import LTagePredictor
from repro.predictors.statistical_corrector import StatisticalCorrector
from repro.predictors.tage import TageConfig, TagePredictor, geometric_history_lengths
from repro.predictors.tage_sc_l import TageScLPredictor


class TestGeometricHistoryLengths:
    def test_endpoints(self):
        lengths = geometric_history_lengths(6, 12, 130)
        assert lengths[0] == 12
        assert lengths[-1] == 130

    def test_strictly_increasing(self):
        lengths = geometric_history_lengths(8, 4, 256)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert geometric_history_lengths(1, 12, 130) == [12]


class TestTageConfig:
    def test_default_matches_fpga_prototype(self):
        config = TageConfig()
        assert config.n_tables == 6
        assert config.table_entries == 4096
        assert config.history_lengths()[0] == 12
        assert config.history_lengths()[-1] == 130


def _train_pattern(predictor, pc, pattern, repetitions=60, measure_last=0.5):
    correct = 0
    total = 0
    start = int(repetitions * (1 - measure_last))
    for rep in range(repetitions):
        for outcome in pattern:
            prediction = predictor.lookup(pc)
            if rep >= start:
                total += 1
                correct += int(prediction.taken == outcome)
            predictor.update(pc, outcome, prediction)
    return correct / max(total, 1)


class TestTage:
    def test_learns_biased_branch(self):
        predictor = TagePredictor(TageConfig(n_tables=4, table_entries=512))
        assert _train_pattern(predictor, 0x4000, [True]) > 0.95

    def test_learns_long_period_pattern(self):
        # Period-9 pattern: beyond a 2-bit counter, learnable with history.
        pattern = [True] * 8 + [False]
        predictor = TagePredictor(TageConfig(n_tables=4, table_entries=1024))
        assert _train_pattern(predictor, 0x4000, pattern, repetitions=80) > 0.85

    def test_outperforms_bimodal_on_history_pattern(self):
        from repro.predictors.bimodal import BimodalPredictor
        pattern = [True, True, False]
        tage = TagePredictor(TageConfig(n_tables=4, table_entries=1024))
        bimodal = BimodalPredictor(1024)
        tage_acc = _train_pattern(tage, 0x4000, pattern, repetitions=80)
        bimodal_acc = _train_pattern(bimodal, 0x4000, pattern, repetitions=80)
        assert tage_acc > bimodal_acc

    def test_meta_reports_provider(self):
        predictor = TagePredictor(TageConfig(n_tables=4, table_entries=512))
        _train_pattern(predictor, 0x4000, [True, False], repetitions=30)
        meta = predictor.lookup(0x4000).meta
        assert "provider" in meta and "indices" in meta
        assert len(meta["indices"]) == 4

    def test_tables_exposed(self):
        predictor = TagePredictor(TageConfig(n_tables=5, table_entries=256))
        assert len(predictor.tagged_tables) == 5
        # base bimodal contributes one more storage table
        assert len(predictor.tables()) == 6

    def test_flush_clears_folded_state(self):
        predictor = TagePredictor(TageConfig(n_tables=4, table_entries=256))
        _train_pattern(predictor, 0x4000, [True], repetitions=5)
        predictor.flush()
        assert predictor.global_history.value(0) == 0

    def test_per_thread_histories_are_independent(self):
        predictor = TagePredictor(TageConfig(n_tables=4, table_entries=256))
        predictor.update(0x4000, True, thread_id=0)
        assert predictor.global_history.value(0) != 0
        assert predictor.global_history.value(1) == 0


class TestLoopPredictor:
    def test_learns_fixed_trip_count(self):
        loop = LoopPredictor(64)
        pc = 0x8000
        trip = 7
        # Train several full loop executions.
        for _ in range(8):
            for i in range(trip):
                taken = i < trip - 1
                loop.update(pc, taken)
        # Now the predictor should predict the whole loop correctly.
        correct = 0
        for i in range(trip):
            expected = i < trip - 1
            prediction = loop.lookup(pc)
            correct += int(prediction.valid and prediction.taken == expected)
            loop.update(pc, expected)
        assert correct == trip

    def test_not_confident_before_repetitions(self):
        loop = LoopPredictor(64)
        pc = 0x8000
        for i in range(5):
            loop.update(pc, i < 4)
        assert not loop.lookup(pc).valid

    def test_irregular_loop_never_becomes_confident(self):
        loop = LoopPredictor(64)
        pc = 0x8000
        rng = random.Random(3)
        for _ in range(12):
            trip = rng.randrange(3, 9)
            for i in range(trip):
                loop.update(pc, i < trip - 1)
        assert not loop.lookup(pc).valid

    def test_flush(self):
        loop = LoopPredictor(64)
        for _ in range(8):
            for i in range(5):
                loop.update(0x8000, i < 4)
        loop.flush()
        assert not loop.lookup(0x8000).valid


class TestStatisticalCorrector:
    def test_agreeing_prediction_is_unchanged(self):
        sc = StatisticalCorrector(256)
        assert sc.correct(0x4000, 0, True, True) in (True, False)

    def test_training_biases_towards_observed_direction(self):
        sc = StatisticalCorrector(256)
        pc = 0x4000
        for _ in range(200):
            sc.update(pc, True, 0, tage_taken=False, final_taken=False)
        # After consistently seeing taken, the corrector should override a
        # low-confidence not-taken TAGE prediction.
        assert sc.correct(pc, 0, False, False) is True

    def test_tables_exposed_and_flush(self):
        sc = StatisticalCorrector(128)
        assert len(sc.tables()) >= 3
        sc.flush()
        assert sc.confidence_sum(0x4000, 0, True) != 0  # TAGE vote bias remains


class TestComposites:
    @pytest.mark.parametrize("cls", [LTagePredictor, TageScLPredictor])
    def test_learns_biased_branch(self, cls):
        predictor = cls(TageConfig(n_tables=4, table_entries=512))
        assert _train_pattern(predictor, 0x4000, [True]) > 0.9

    @pytest.mark.parametrize("cls", [LTagePredictor, TageScLPredictor])
    def test_component_access_and_flush(self, cls):
        predictor = cls(TageConfig(n_tables=4, table_entries=256))
        assert predictor.tage is not None
        assert predictor.loop is not None
        assert len(predictor.tables()) > 4
        predictor.flush()  # must not raise

    def test_ltage_loop_component_captures_long_loops(self):
        predictor = LTagePredictor(TageConfig(n_tables=4, table_entries=512))
        pc = 0x9000
        trip = 40  # too long for the 2-bit/short-history components alone
        for _ in range(12):
            for i in range(trip):
                predictor.predict_and_update(pc, i < trip - 1)
        # Measure a final loop execution.
        mispredicts = sum(
            predictor.predict_and_update(pc, i < trip - 1) for i in range(trip))
        assert mispredicts <= 2

    def test_tage_sc_l_flush_thread(self):
        predictor = TageScLPredictor(TageConfig(n_tables=4, table_entries=256))
        predictor.predict_and_update(0x4000, True, thread_id=1)
        predictor.flush_thread(1)
        assert predictor.tage.global_history.value(1) == 0
