"""Behavioural tests for the direction predictors (bimodal, gshare, tournament)."""

import random

import pytest

from repro.predictors import (
    BimodalPredictor,
    GsharePredictor,
    TournamentPredictor,
    make_direction_predictor,
)
from repro.predictors.base import DirectionPrediction


PREDICTOR_CLASSES = [BimodalPredictor, GsharePredictor, TournamentPredictor]


def train(predictor, pc, pattern, repetitions=50, thread_id=0):
    """Train a predictor on a repeating outcome pattern; return final accuracy."""
    correct = 0
    total = 0
    for rep in range(repetitions):
        for outcome in pattern:
            prediction = predictor.lookup(pc, thread_id)
            if rep >= repetitions // 2:
                total += 1
                correct += int(prediction.taken == outcome)
            predictor.update(pc, outcome, prediction, thread_id)
    return correct / max(total, 1)


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_lookup_returns_prediction(self, cls):
        predictor = cls()
        prediction = predictor.lookup(0x4000)
        assert isinstance(prediction, DirectionPrediction)
        assert isinstance(prediction.taken, bool)

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_learns_always_taken_branch(self, cls):
        predictor = cls()
        accuracy = train(predictor, 0x4000, [True])
        assert accuracy > 0.95

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_learns_always_not_taken_branch(self, cls):
        predictor = cls()
        accuracy = train(predictor, 0x4000, [False])
        assert accuracy > 0.95

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_update_without_prediction_object(self, cls):
        predictor = cls()
        predictor.update(0x4000, True)  # must not raise
        assert predictor.lookup(0x4000) is not None

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_stats_accumulate(self, cls):
        predictor = cls()
        for _ in range(10):
            predictor.predict_and_update(0x4000, True)
        assert predictor.stats(0).lookups == 10

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_flush_resets_learning(self, cls):
        predictor = cls()
        train(predictor, 0x4000, [True], repetitions=20)
        predictor.flush()
        prediction = predictor.lookup(0x4000)
        # After a flush the 2-bit counters are back to weakly-not-taken.
        assert prediction.taken in (False, True)  # defined behaviour, no crash
        # Re-training works.
        assert train(predictor, 0x4000, [True], repetitions=40) > 0.85

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_storage_bits_positive(self, cls):
        assert cls().storage_bits > 0

    @pytest.mark.parametrize("cls", PREDICTOR_CLASSES)
    def test_total_stats_merges_threads(self, cls):
        predictor = cls()
        predictor.predict_and_update(0x4000, True, thread_id=0)
        predictor.predict_and_update(0x4000, True, thread_id=1)
        assert predictor.total_stats().lookups == 2


class TestBimodal:
    def test_different_branches_do_not_interfere(self):
        predictor = BimodalPredictor(1024)
        train(predictor, 0x4000, [True], repetitions=10)
        train(predictor, 0x4008, [False], repetitions=10)
        assert predictor.lookup(0x4000).taken is True
        assert predictor.lookup(0x4008).taken is False

    def test_aliased_branches_share_a_counter(self):
        predictor = BimodalPredictor(64)
        pc_a = 0x1000
        pc_b = pc_a + 64 * 4  # same index modulo table size
        assert predictor.index_of(pc_a) == predictor.index_of(pc_b)
        train(predictor, pc_a, [True], repetitions=10)
        assert predictor.lookup(pc_b).taken is True

    def test_cannot_learn_alternating_pattern(self):
        predictor = BimodalPredictor(1024)
        accuracy = train(predictor, 0x4000, [True, False], repetitions=40)
        assert accuracy < 0.8


class TestGshare:
    def test_learns_history_dependent_pattern(self):
        predictor = GsharePredictor(4096)
        accuracy = train(predictor, 0x4000, [True, False], repetitions=80)
        assert accuracy > 0.9

    def test_history_advances_per_thread(self):
        predictor = GsharePredictor(4096)
        predictor.update(0x4000, True, thread_id=0)
        assert predictor.global_history.value(0) == 1
        assert predictor.global_history.value(1) == 0

    def test_index_depends_on_history(self):
        predictor = GsharePredictor(4096)
        index_before = predictor.index_of(0x4000)
        predictor.update(0x4000, True)
        index_after = predictor.index_of(0x4000)
        assert index_before != index_after

    def test_flush_thread_clears_history(self):
        predictor = GsharePredictor(4096)
        predictor.update(0x4000, True, thread_id=0)
        predictor.flush_thread(0)
        assert predictor.global_history.value(0) == 0


class TestTournament:
    def test_learns_alternating_pattern_via_local_history(self):
        predictor = TournamentPredictor()
        accuracy = train(predictor, 0x4000, [True, False], repetitions=80)
        assert accuracy > 0.85

    def test_learns_biased_branches(self):
        predictor = TournamentPredictor()
        rng = random.Random(7)
        pc = 0x7000
        correct = 0
        for i in range(600):
            taken = rng.random() < 0.95
            prediction = predictor.lookup(pc)
            if i > 300:
                correct += int(prediction.taken == taken)
            predictor.update(pc, taken, prediction)
        assert correct / 299 > 0.78

    def test_exposes_component_tables(self):
        predictor = TournamentPredictor()
        assert len(predictor.tables()) == 3
        assert predictor.local_pht is not None
        assert predictor.global_pht is not None
        assert predictor.choice_pht is not None

    def test_chooser_meta_is_reported(self):
        predictor = TournamentPredictor()
        meta = predictor.lookup(0x4000).meta
        assert "use_global" in meta
        assert "local_taken" in meta and "global_taken" in meta


class TestFactory:
    def test_all_registered_predictors_construct(self):
        for name in ("bimodal", "gshare", "tournament", "tage", "ltage", "tage_sc_l"):
            predictor = make_direction_predictor(name)
            assert predictor.lookup(0x1234) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_direction_predictor("neural_net_9000")

    def test_name_normalisation(self):
        predictor = make_direction_predictor("TAGE-SC-L")
        assert predictor.name == "tage_sc_l"
