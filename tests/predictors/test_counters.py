"""Tests for saturating counters."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.counters import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    SaturatingCounter,
    counter_is_taken,
    counter_strength,
    saturating_update,
    signed_saturating_update,
)


class TestSaturatingUpdate:
    def test_increments_on_taken(self):
        assert saturating_update(1, True) == 2

    def test_decrements_on_not_taken(self):
        assert saturating_update(2, False) == 1

    def test_saturates_high(self):
        assert saturating_update(3, True) == 3

    def test_saturates_low(self):
        assert saturating_update(0, False) == 0

    def test_wider_counter_saturates_at_its_max(self):
        assert saturating_update(7, True, bits=3) == 7
        assert saturating_update(6, True, bits=3) == 7

    @given(st.integers(min_value=0, max_value=255), st.booleans(),
           st.integers(min_value=1, max_value=8))
    def test_result_stays_in_range(self, value, taken, bits):
        value %= 1 << bits
        result = saturating_update(value, taken, bits)
        assert 0 <= result < (1 << bits)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=2, max_value=4))
    def test_moves_by_at_most_one(self, value, bits):
        value %= 1 << bits
        assert abs(saturating_update(value, True, bits) - value) <= 1
        assert abs(saturating_update(value, False, bits) - value) <= 1


class TestDirectionAndStrength:
    def test_canonical_2bit_directions(self):
        assert not counter_is_taken(STRONG_NOT_TAKEN)
        assert not counter_is_taken(WEAK_NOT_TAKEN)
        assert counter_is_taken(WEAK_TAKEN)
        assert counter_is_taken(STRONG_TAKEN)

    def test_strength_is_zero_for_weak_states(self):
        assert counter_strength(WEAK_NOT_TAKEN) == 0
        assert counter_strength(WEAK_TAKEN) == 0

    def test_strength_is_one_for_strong_states(self):
        assert counter_strength(STRONG_NOT_TAKEN) == 1
        assert counter_strength(STRONG_TAKEN) == 1

    def test_3bit_midpoint(self):
        assert not counter_is_taken(3, bits=3)
        assert counter_is_taken(4, bits=3)


class TestSignedCounter:
    def test_moves_towards_taken(self):
        assert signed_saturating_update(0, True, 6) == 1

    def test_moves_towards_not_taken(self):
        assert signed_saturating_update(0, False, 6) == -1

    def test_saturates_at_positive_limit(self):
        assert signed_saturating_update(31, True, 6) == 31

    def test_saturates_at_negative_limit(self):
        assert signed_saturating_update(-32, False, 6) == -32

    @given(st.integers(min_value=-32, max_value=31), st.booleans())
    def test_stays_in_range(self, value, taken):
        result = signed_saturating_update(value, taken, 6)
        assert -32 <= result <= 31


class TestSaturatingCounterObject:
    def test_default_is_weak_not_taken(self):
        counter = SaturatingCounter()
        assert counter.value == WEAK_NOT_TAKEN
        assert not counter.taken

    def test_training_to_taken(self):
        counter = SaturatingCounter()
        counter.update(True)
        counter.update(True)
        assert counter.taken
        assert counter.value == STRONG_TAKEN

    def test_is_weak_flag(self):
        assert SaturatingCounter(value=WEAK_TAKEN).is_weak
        assert not SaturatingCounter(value=STRONG_TAKEN).is_weak

    def test_set_out_of_range_rejected(self):
        counter = SaturatingCounter()
        with pytest.raises(ValueError):
            counter.set(4)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_invalid_initial_value_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=7)

    def test_reset_returns_to_weak_not_taken(self):
        counter = SaturatingCounter(value=STRONG_TAKEN)
        counter.reset()
        assert counter.value == WEAK_NOT_TAKEN

    def test_int_conversion(self):
        assert int(SaturatingCounter(value=2)) == 2

    def test_max_value(self):
        assert SaturatingCounter(bits=3).max_value == 7
