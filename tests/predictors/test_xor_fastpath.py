"""Fused-XOR fast path vs generic ``TableIsolation`` dispatch.

The XOR-family presets (``xor_bp``, ``noisy_xor_bp``, ``noisy_xor_btb``,
``noisy_xor_pht``) are served by monomorphic fast paths: precomputed
per-(thread, table) encode/decode masks fused into storage accesses, the
generated TAGE kernels and the BTB's masked probe arms.  The masks are
re-randomised at switch time via the isolation mask-cache protocol.

These tests build twin systems — one on the fast paths, one with every
storage fast-path flag forced off so all accesses take the generic virtual
dispatch — and drive both through identical branch streams interleaved with
context switches and privilege switches (mask re-randomisation boundaries).
Per-branch outcomes, statistics and the raw (still encoded) storage bits
must match exactly, on the bare BPU and through both batched core engines.
"""

import random

import pytest

from repro.core.registry import make_bpu, resolve_preset
from repro.cpu.config import fpga_prototype, sunny_cove_smt
from repro.predictors.tage import TageConfig
from repro.cpu.core import SingleThreadCore
from repro.cpu.smt import SmtCore
from repro.experiments.runner import build_bpu
from repro.experiments.scaling import ExperimentScale
from repro.types import Privilege
from repro.workloads import SINGLE_THREAD_PAIRS, SMT2_PAIRS, make_pair_workloads
from repro.workloads.generator import make_workload

#: Every preset whose mechanisms are plain-XOR encoders (the paper's
#: headline defenses); ``noisy_xor_btb``/``noisy_xor_pht`` protect only one
#: structure, so the other side runs the passthrough fast path.
XOR_PRESETS = ["xor_bp", "noisy_xor_bp", "noisy_xor_btb", "noisy_xor_pht"]

SCALE = ExperimentScale(
    time_scale=200.0, smt_time_scale=400.0, syscall_time_scale=25.0,
    st_target_branches=2_000, st_warmup_branches=500,
    smt_instructions=20_000, smt_warmup_instructions=5_000, seed=4242)


def _force_generic_dispatch(bpu):
    """Turn off every storage fast path so accesses take virtual dispatch."""
    bpu.force_generic_dispatch()


def _drive(bpu, records, *, thread_id=0, priv_every=41, switch_every=97):
    """Run a record stream with interleaved switch notifications."""
    outcomes = []
    for i, record in enumerate(records):
        outcomes.append(bpu.execute_branch_fast(
            record.pc, record.taken, record.target, record.branch_type,
            thread_id))
        if i % priv_every == 0:
            # A system call: two privilege transitions, each re-randomising
            # the thread's key material (and therefore the fused masks).
            bpu.notify_privilege_switch(thread_id, Privilege.KERNEL)
            bpu.notify_privilege_switch(thread_id, Privilege.USER)
        if i % switch_every == 0:
            bpu.notify_context_switch(thread_id)
    return outcomes


def _raw_direction_state(bpu):
    """Raw (encoded) contents of every direction-predictor table."""
    return [list(table.rows()) for table in bpu.direction.tables()]


def _raw_btb_state(bpu):
    """Raw (encoded) BTB entries."""
    return bpu.btb.raw_sets()


class TestBpuFastPathVsGenericDispatch:
    @pytest.mark.parametrize("preset", XOR_PRESETS)
    @pytest.mark.parametrize("predictor", ["tage", "gshare"])
    def test_outcomes_stats_and_storage_match(self, preset, predictor):
        records = make_workload("gcc", seed=13).segment(2_500)
        fast = make_bpu(predictor, preset, seed=99)
        slow = make_bpu(predictor, preset, seed=99)
        _force_generic_dispatch(slow)

        assert _drive(fast, records) == _drive(slow, records)
        assert (fast.direction.stats(0).lookups
                == slow.direction.stats(0).lookups)
        assert (fast.direction.stats(0).mispredictions
                == slow.direction.stats(0).mispredictions)
        assert fast.btb.lookups == slow.btb.lookups
        assert fast.btb.hits == slow.btb.hits
        # The stored bits (encoded under the same thread keys) are identical,
        # so the fast paths encode exactly what the generic dispatch does.
        assert _raw_direction_state(fast) == _raw_direction_state(slow)
        assert _raw_btb_state(fast) == _raw_btb_state(slow)

    @pytest.mark.parametrize("preset", ["xor_bp", "noisy_xor_bp"])
    def test_multi_thread_mask_isolation(self, preset):
        # Two hardware threads with interleaved re-randomisation: thread 0's
        # rekey must not disturb thread 1's masks on either path.
        records = make_workload("mcf", seed=3).segment(1_200)
        fast = make_bpu("tage", preset, seed=7)
        slow = make_bpu("tage", preset, seed=7)
        _force_generic_dispatch(slow)
        for bpu in (fast, slow):
            for i, record in enumerate(records):
                thread = i & 1
                bpu.execute_branch_fast(record.pc, record.taken,
                                        record.target, record.branch_type,
                                        thread)
                if i % 53 == 0:
                    bpu.notify_context_switch(0)
                if i % 89 == 0:
                    bpu.notify_privilege_switch(1, Privilege.KERNEL)
                    bpu.notify_privilege_switch(1, Privilege.USER)
        for thread in (0, 1):
            assert (fast.direction.stats(thread).mispredictions
                    == slow.direction.stats(thread).mispredictions)
        assert _raw_direction_state(fast) == _raw_direction_state(slow)
        assert _raw_btb_state(fast) == _raw_btb_state(slow)


class TestPackedKernelArms:
    """The packed-BTB and gshare/TAGE kernels must run their intended arm.

    Silent fallback to the generic dispatch would keep results correct but
    quietly lose the packed fast paths; these assertions (mirrored by the
    throughput benchmark) pin the specialisation choice itself.
    """

    @pytest.mark.parametrize("preset", XOR_PRESETS + ["baseline",
                                                      "complete_flush"])
    @pytest.mark.parametrize("predictor", ["tage", "gshare"])
    def test_kernel_arms_match_preset(self, preset, predictor):
        config = resolve_preset(preset)
        bpu = make_bpu(predictor, preset, seed=11)
        want_btb = ("fused-xor" if config.btb_mechanism in ("xor", "noisy_xor")
                    else "passthrough")
        want_pht = ("fused-xor" if config.pht_mechanism in ("xor", "noisy_xor")
                    else "passthrough")
        assert bpu.btb.exec_conditional_kernel(0).arm == want_btb
        assert bpu.direction.exec_kernel(0).arm == want_pht
        # Re-randomisation rebuilds the same arm (never a generic fallback).
        bpu.notify_context_switch(0)
        assert bpu.btb.exec_conditional_kernel(0).arm == want_btb
        assert bpu.direction.exec_kernel(0).arm == want_pht

    @pytest.mark.parametrize("predictor", ["tage", "gshare"])
    def test_non_xor_encoder_takes_generic_arm(self, predictor):
        # S-box content encoding is reversible but not plain XOR, so it must
        # not be fused into the packed kernels.
        bpu = make_bpu(predictor, "xor_bp", seed=11,
                       config_overrides={"encoder": "sbox"})
        assert bpu.btb.exec_conditional_kernel(0).arm == "generic"
        assert bpu.direction.exec_kernel(0).arm == "generic"

    def test_precise_flush_takes_generic_arm(self):
        bpu = make_bpu("gshare", "precise_flush", seed=11)
        assert bpu.btb.exec_conditional_kernel(0).arm == "generic"
        assert bpu.direction.exec_kernel(0).arm == "generic"


class TestNonXorFallbackEquivalence:
    """Generic-arm kernels must equal the two-phase scalar protocol.

    When isolation is *not* plain XOR (S-box ablation encoder), every kernel
    drops to its generic arm; driving the fused entry points must then be
    indistinguishable — outcome for outcome, bit for bit — from the
    ``lookup``/``update`` reference flow.
    """

    @pytest.mark.parametrize("predictor", ["tage", "gshare"])
    def test_fast_entry_points_match_reference(self, predictor):
        records = make_workload("gobmk", seed=21).segment(1_500)
        fast = make_bpu(predictor, "xor_bp", seed=33,
                        config_overrides={"encoder": "sbox"})
        ref = make_bpu(predictor, "xor_bp", seed=33,
                       config_overrides={"encoder": "sbox"})
        for i, record in enumerate(records):
            out = fast.execute_branch_fast(record.pc, record.taken,
                                           record.target, record.branch_type,
                                           0)
            expected = ref.execute_branch(record.pc, record.taken,
                                          record.target, record.branch_type,
                                          0)
            assert out == (expected.direction_mispredicted,
                           expected.target_mispredicted,
                           expected.btb_accessed, expected.btb_hit)
            if i % 67 == 0:
                fast.notify_context_switch(0)
                ref.notify_context_switch(0)
        assert _raw_direction_state(fast) == _raw_direction_state(ref)
        assert _raw_btb_state(fast) == _raw_btb_state(ref)


class TestAllocateParityHighMispredict:
    def test_packed_allocation_matches_generic_dispatch(self):
        # A coin-flip direction stream over a reused site set mispredicts
        # ~50%, so the TAGE allocator runs on a large fraction of branches;
        # the packed flat-buffer reads/writes must leave storage, stats and
        # the allocation LFSR bit-identical to the generic per-table arm.
        cfg = TageConfig(n_tables=4, table_entries=256, base_entries=512,
                         min_history=4, max_history=24)
        fast = make_bpu("tage", "xor_bp", seed=5,
                        predictor_kwargs={"config": cfg})
        slow = make_bpu("tage", "xor_bp", seed=5,
                        predictor_kwargs={"config": cfg})
        _force_generic_dispatch(slow)
        rng = random.Random(99)
        sites = [0x40000 + 4 * rng.randrange(4096) for _ in range(300)]
        stream = [(sites[rng.randrange(len(sites))], rng.random() < 0.5)
                  for _ in range(6_000)]
        for i, (pc, taken) in enumerate(stream):
            assert (fast.direction.execute(pc, taken, 0)
                    == slow.direction.execute(pc, taken, 0)), f"record {i}"
            if i % 97 == 0:
                # Rekey boundary: allocation masks re-randomise mid-stream.
                fast.notify_privilege_switch(0, Privilege.KERNEL)
                fast.notify_privilege_switch(0, Privilege.USER)
                slow.notify_privilege_switch(0, Privilege.KERNEL)
                slow.notify_privilege_switch(0, Privilege.USER)
        assert fast.direction.stats(0).mispredictions \
            == slow.direction.stats(0).mispredictions
        # The workload really was high-mispredict (allocation-heavy).
        assert fast.direction.stats(0).mispredictions > 1_500
        assert _raw_direction_state(fast) == _raw_direction_state(slow)
        # The tie-break LFSR advanced identically: multi-candidate
        # allocations took the packed path on one side, generic on the other.
        assert fast.direction._lfsr._state == slow.direction._lfsr._state
        assert fast.direction._lfsr._state != 0xACE1


def _engine_snapshot(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "threads": {
            name: (t.cycles, t.instructions, t.branches,
                   t.conditional_branches, t.direction_mispredicts,
                   t.target_mispredicts, t.btb_lookups, t.btb_hits,
                   t.syscalls, t.context_switches)
            for name, t in result.threads.items()},
    }


class TestEngineFastPathVsGenericDispatch:
    """The batched engines must produce identical results either way.

    This covers the engine-level plumbing on top of the storage layer: the
    per-thread kernel fetch/refresh around switch notifications and the
    silent-fallback dispatcher (forcing generic dispatch mid-stack must not
    change a single statistic, only throughput).
    """

    @pytest.mark.parametrize("preset", XOR_PRESETS)
    def test_single_thread_core(self, preset):
        def run(force_generic):
            config = fpga_prototype()
            workloads = make_pair_workloads(SINGLE_THREAD_PAIRS[0],
                                            seed=SCALE.seed)
            bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
            if force_generic:
                _force_generic_dispatch(bpu)
            core = SingleThreadCore(
                config, bpu, workloads, time_scale=SCALE.time_scale,
                syscall_time_scale=SCALE.syscall_time_scale)
            return core.run(target_branches=SCALE.st_target_branches,
                            warmup_branches=SCALE.st_warmup_branches,
                            mechanism_name=preset, engine="batched")

        assert _engine_snapshot(run(False)) == _engine_snapshot(run(True))

    @pytest.mark.parametrize("preset", ["xor_bp", "noisy_xor_bp"])
    def test_smt_core(self, preset):
        def run(force_generic):
            config = sunny_cove_smt()
            workloads = make_pair_workloads(SMT2_PAIRS[0], seed=SCALE.seed)
            bpu = build_bpu(config, preset, seed=SCALE.seed + 1)
            if force_generic:
                _force_generic_dispatch(bpu)
            core = SmtCore(config, bpu, workloads,
                           time_scale=SCALE.smt_time_scale, se_mode=False)
            return core.run(instructions=SCALE.smt_instructions,
                            warmup_instructions=SCALE.smt_warmup_instructions,
                            mechanism_name=preset, engine="batched")

        assert _engine_snapshot(run(False)) == _engine_snapshot(run(True))
