"""Tests for branch history registers."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.history import (
    GlobalHistory,
    LocalHistoryTable,
    PathHistory,
    fold_history,
)


class TestFoldHistory:
    def test_zero_width_folds_to_zero(self):
        assert fold_history(0b1011, 4, 0) == 0

    def test_short_history_passes_through(self):
        assert fold_history(0b101, 3, 8) == 0b101

    def test_fold_is_xor_of_chunks(self):
        # 8-bit history 0b1101_0110 folded to 4 bits = 1101 ^ 0110.
        assert fold_history(0b11010110, 8, 4) == (0b1101 ^ 0b0110)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=16))
    def test_result_fits_in_width(self, history, history_bits, folded_bits):
        history &= (1 << history_bits) - 1
        assert 0 <= fold_history(history, history_bits, folded_bits) < (1 << folded_bits)


class TestGlobalHistory:
    def test_push_shifts_in_outcomes(self):
        ghr = GlobalHistory(8)
        ghr.push(True)
        ghr.push(False)
        ghr.push(True)
        assert ghr.value() == 0b101

    def test_history_is_per_thread(self):
        ghr = GlobalHistory(8)
        ghr.push(True, thread_id=0)
        ghr.push(False, thread_id=1)
        assert ghr.value(0) == 1
        assert ghr.value(1) == 0

    def test_history_is_bounded(self):
        ghr = GlobalHistory(4)
        for _ in range(10):
            ghr.push(True)
        assert ghr.value() == 0b1111

    def test_low_bits(self):
        ghr = GlobalHistory(16)
        for bit in (1, 1, 0, 1):
            ghr.push(bool(bit))
        assert ghr.low_bits(3) == 0b101

    def test_clear_single_thread(self):
        ghr = GlobalHistory(8)
        ghr.push(True, 0)
        ghr.push(True, 1)
        ghr.clear(0)
        assert ghr.value(0) == 0
        assert ghr.value(1) == 1

    def test_clear_all_threads(self):
        ghr = GlobalHistory(8)
        ghr.push(True, 0)
        ghr.push(True, 1)
        ghr.clear()
        assert ghr.value(0) == 0
        assert ghr.value(1) == 0

    def test_set_masks_to_width(self):
        ghr = GlobalHistory(4)
        ghr.set(0xFF)
        assert ghr.value() == 0xF

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)

    def test_folded_uses_full_history(self):
        ghr = GlobalHistory(1024)
        for i in range(200):
            ghr.push(i % 3 == 0)
        assert 0 <= ghr.folded(12) < (1 << 12)


class TestPathHistory:
    def test_push_incorporates_pc_bits(self):
        path = PathHistory(16)
        path.push(0x1000)
        path.push(0x1004)
        assert path.value() != 0 or True  # value depends on pc bits >> 2
        # Different PCs give different paths.
        other = PathHistory(16)
        other.push(0x2000)
        other.push(0x2008)
        assert isinstance(path.value(), int)

    def test_per_thread_isolation(self):
        path = PathHistory(16)
        path.push(0xABCD, 0)
        assert path.value(1) == 0

    def test_clear(self):
        path = PathHistory(16)
        path.push(0xABCD)
        path.clear()
        assert path.value() == 0

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            PathHistory(0)


class TestLocalHistoryTable:
    def test_push_and_read(self):
        lht = LocalHistoryTable(64, 8)
        pc = 0x4000
        lht.push(pc, True)
        lht.push(pc, False)
        assert lht.read(pc) == 0b10

    def test_different_branches_use_different_entries(self):
        lht = LocalHistoryTable(64, 8)
        lht.push(0x4000, True)
        assert lht.read(0x4004) == 0

    def test_pattern_is_bounded(self):
        lht = LocalHistoryTable(16, 4)
        for _ in range(10):
            lht.push(0x100, True)
        assert lht.read(0x100) == 0b1111

    def test_flush_clears_all(self):
        lht = LocalHistoryTable(16, 4)
        lht.push(0x100, True)
        lht.flush()
        assert lht.read(0x100) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(100, 8)

    def test_properties(self):
        lht = LocalHistoryTable(32, 11)
        assert lht.n_entries == 32
        assert lht.history_bits == 11
