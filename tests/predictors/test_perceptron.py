"""Tests for the perceptron direction predictor."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import KeyManager, NoisyXorIsolation, XorContentIsolation
from repro.predictors import PerceptronPredictor, make_direction_predictor
from repro.predictors.perceptron import _to_signed, _to_unsigned


class TestSignedFieldCodec:
    """Signed weight <-> unsigned field conversion."""

    @given(st.integers(min_value=-128, max_value=127))
    def test_round_trip_8bit(self, value):
        assert _to_signed(_to_unsigned(value, 8), 8) == value

    @given(st.integers(min_value=2, max_value=16), st.data())
    def test_round_trip_any_width(self, bits, data):
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        value = data.draw(st.integers(min_value=low, max_value=high))
        assert _to_signed(_to_unsigned(value, bits), bits) == value

    @given(st.integers(min_value=0, max_value=255))
    def test_unsigned_field_fits_width(self, field):
        assert 0 <= _to_unsigned(_to_signed(field, 8), 8) <= 255


class TestConstruction:
    def test_default_geometry(self):
        predictor = PerceptronPredictor()
        assert predictor.history_bits == 24
        assert predictor.weight_bits == 8
        assert predictor.threshold == int(1.93 * 24 + 14)
        assert len(predictor.tables()) == 1

    def test_registered_in_factory(self):
        predictor = make_direction_predictor("perceptron", n_entries=64,
                                             history_bits=8)
        assert isinstance(predictor, PerceptronPredictor)

    def test_table_width_holds_all_weights(self):
        predictor = PerceptronPredictor(n_entries=64, history_bits=12, weight_bits=8)
        assert predictor.weight_table.entry_bits == (12 + 1) * 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(history_bits=0)
        with pytest.raises(ValueError):
            PerceptronPredictor(weight_bits=1)
        with pytest.raises(ValueError):
            PerceptronPredictor(n_entries=100)  # not a power of two


class TestPacking:
    @given(st.lists(st.integers(min_value=-128, max_value=127),
                    min_size=13, max_size=13))
    def test_pack_unpack_round_trip(self, weights):
        predictor = PerceptronPredictor(n_entries=16, history_bits=12, weight_bits=8)
        assert predictor._unpack(predictor._pack(weights)) == weights

    def test_packed_word_fits_table(self):
        predictor = PerceptronPredictor(n_entries=16, history_bits=12, weight_bits=8)
        word = predictor._pack([127] * 13)
        assert word < (1 << predictor.weight_table.entry_bits)


class TestLearning:
    def test_learns_strongly_biased_branch(self):
        predictor = PerceptronPredictor(n_entries=128, history_bits=12)
        pc = 0x4000_1000
        for _ in range(200):
            predictor.predict_and_update(pc, True)
        assert predictor.lookup(pc).taken is True

    def test_learns_alternating_pattern(self):
        """A pattern correlated with history is exactly what perceptrons learn."""
        predictor = PerceptronPredictor(n_entries=128, history_bits=16)
        pc = 0x4000_2000
        mispredicts = 0
        for i in range(2000):
            taken = (i % 2) == 0
            mispredicts += predictor.predict_and_update(pc, taken)
        # After warm-up the alternating pattern should be almost perfectly predicted.
        late_mispredicts = 0
        for i in range(2000, 2400):
            taken = (i % 2) == 0
            late_mispredicts += predictor.predict_and_update(pc, taken)
        assert late_mispredicts <= 10

    def test_beats_random_on_history_correlated_stream(self):
        rng = random.Random(7)
        predictor = PerceptronPredictor(n_entries=256, history_bits=12)
        pcs = [0x1000 + 4 * i for i in range(8)]
        history = []
        mispredicts = total = 0
        for i in range(4000):
            pc = pcs[i % len(pcs)]
            taken = (len(history) < 2) or (history[-1] ^ history[-2] == 0)
            if rng.random() < 0.05:
                taken = not taken
            mispredicts += predictor.predict_and_update(pc, taken)
            history.append(int(taken))
            total += 1
        assert mispredicts / total < 0.35

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(n_entries=16, history_bits=4, weight_bits=4)
        pc = 0x2000
        for _ in range(500):
            predictor.predict_and_update(pc, True)
        weights = predictor._unpack(predictor.weight_table.read(predictor.index_of(pc)))
        assert all(-8 <= w <= 7 for w in weights)

    def test_update_without_prediction_object(self):
        predictor = PerceptronPredictor(n_entries=16, history_bits=4)
        predictor.update(0x3000, True)
        assert predictor.lookup(0x3000).taken is True


class TestStatsAndFlush:
    def test_stats_recorded_per_thread(self):
        predictor = PerceptronPredictor(n_entries=32, history_bits=8)
        for _ in range(10):
            predictor.predict_and_update(0x100, True, thread_id=1)
        assert predictor.stats(1).lookups == 10
        assert predictor.stats(0).lookups == 0

    def test_flush_clears_learned_state(self):
        predictor = PerceptronPredictor(n_entries=32, history_bits=8)
        pc = 0x100
        for _ in range(100):
            predictor.predict_and_update(pc, True)
        predictor.flush()
        # After a flush the weights are zero, so the output is 0 -> predicted taken,
        # but the stored word must be the reset value.
        assert predictor.weight_table.read(predictor.index_of(pc)) == 0

    def test_flush_thread_only_touches_that_thread(self):
        from repro.core import PreciseFlushIsolation

        isolation = PreciseFlushIsolation(KeyManager(seed=3))
        predictor = PerceptronPredictor(n_entries=32, history_bits=8,
                                        isolation=isolation)
        for _ in range(50):
            predictor.predict_and_update(0x100, True, thread_id=0)
        predictor.flush_thread(1)
        assert predictor.lookup(0x100, thread_id=0).taken is True


class TestIsolationIntegration:
    """The perceptron picks up XOR/Noisy-XOR protection unchanged."""

    def test_protected_predictor_still_learns(self):
        """Under Noisy-XOR isolation the perceptron still learns its workload.

        Unwritten rows decode to key-dependent garbage (that is the point of
        the mechanism), so the protected predictor warms up from a random
        rather than a zero state; it must nevertheless converge to a useful
        accuracy on a predictable branch stream.
        """
        protected = PerceptronPredictor(
            n_entries=64, history_bits=8, weight_bits=6,
            isolation=NoisyXorIsolation(KeyManager(seed=9)))
        rng = random.Random(3)
        pcs = [0x5000 + 4 * i for i in range(4)]
        mispredicts = measured = 0
        for i in range(6000):
            pc = pcs[i % len(pcs)]
            taken = rng.random() < 0.9
            result = protected.predict_and_update(pc, taken)
            if i >= 3000:  # steady state only
                mispredicts += result
                measured += 1
        # A blind guesser is wrong 50% of the time, always-taken 10%; the
        # protected perceptron must get close to the always-taken bound.
        assert mispredicts / measured < 0.25

    def test_mechanism_transparent_for_written_rows(self):
        """Once a row has been written under a stable key, reads decode exactly."""
        keys = KeyManager(seed=9)
        protected = PerceptronPredictor(n_entries=64, history_bits=8,
                                        isolation=NoisyXorIsolation(keys))
        plain = PerceptronPredictor(n_entries=64, history_bits=8)
        weights = [3, -2, 5, 0, -7, 1, 2, -1, 4]
        index = protected.index_of(0x5000)
        protected.weight_table.write(index, protected._pack(weights))
        plain.weight_table.write(index, plain._pack(weights))
        assert protected._unpack(protected.weight_table.read(index)) == weights
        assert (protected.weight_table.read(index)
                == plain.weight_table.read(index))

    def test_key_rotation_obscures_learned_state(self):
        keys = KeyManager(seed=9)
        isolation = NoisyXorIsolation(keys)
        predictor = PerceptronPredictor(n_entries=256, history_bits=12,
                                        isolation=isolation)
        pc = 0x6000
        for _ in range(300):
            predictor.predict_and_update(pc, True)
        stored_before = predictor.weight_table.read_raw(0)  # raw snapshot
        isolation.on_context_switch(0)
        # The decoded weights after a key change are unrelated to the trained
        # ones; the raw storage is unchanged.
        assert predictor.weight_table.read_raw(0) == stored_before
        trained_word = predictor._pack([predictor._clip(1)] * 13)
        assert predictor.weight_table.read(predictor.index_of(pc)) != trained_word
