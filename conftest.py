"""Pytest bootstrap: make the ``src`` layout importable without installation.

The package is normally installed with ``pip install -e .``; this shim keeps
``pytest`` working in minimal environments (e.g. offline CI images without the
``wheel`` package) by putting ``src/`` on ``sys.path`` when the package is not
already importable.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

try:  # pragma: no cover - trivial import probe
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)


#: Captured at session start: the backend CI asked the whole suite to run
#: under (see the fixture below).  ``None`` means the default (python).
_SESSION_BACKEND = os.environ.get("REPRO_BACKEND")


@pytest.fixture(autouse=True)
def _isolate_repro_env():
    """Scrub the REPRO_* knobs before every test.

    The suite must behave identically on a developer machine with
    ``REPRO_STORE_DIR``/``REPRO_CACHE_DIR`` exported (the documented
    workflow) and in clean CI — without this, cache/store-sensitive tests
    would read stale results from, and publish tiny test simulations into,
    the user's real store.  Tests that exercise the env knobs set them
    explicitly via ``monkeypatch.setenv`` on top of this scrub.

    Uses a private :class:`pytest.MonkeyPatch` (not the shared function
    fixture) so a test calling ``monkeypatch.undo()`` cannot resurrect the
    developer's environment mid-test.
    """
    patcher = pytest.MonkeyPatch()
    for name in ("REPRO_SCALE", "REPRO_JOBS", "REPRO_SHARD",
                 "REPRO_CACHE_DIR", "REPRO_STORE_DIR",
                 "REPRO_CASE_TIMEOUT", "REPRO_RETRIES",
                 "REPRO_RETRY_BACKOFF", "REPRO_FAULT_SPEC",
                 "REPRO_BACKEND", "REPRO_TRACE_DIR",
                 "REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                 "REPRO_SERVE_DATA_DIR", "REPRO_SERVE_WORKERS",
                 "REPRO_SERVE_URL"):
        patcher.delenv(name, raising=False)
    # REPRO_BACKEND is special: backends are bit-identical by contract, so
    # CI runs the whole suite under REPRO_BACKEND=numpy as a matrix leg.
    # Restore the *session-start* value (pinning it against in-test
    # mutations) instead of scrubbing it outright.
    if _SESSION_BACKEND is not None:
        patcher.setenv("REPRO_BACKEND", _SESSION_BACKEND)
    yield
    patcher.undo()
