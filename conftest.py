"""Pytest bootstrap: make the ``src`` layout importable without installation.

The package is normally installed with ``pip install -e .``; this shim keeps
``pytest`` working in minimal environments (e.g. offline CI images without the
``wheel`` package) by putting ``src/`` on ``sys.path`` when the package is not
already importable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

try:  # pragma: no cover - trivial import probe
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
