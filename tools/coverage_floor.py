"""Coverage-floor gate over a Cobertura ``coverage.xml``.

CI runs the tier-1 suite under ``pytest-cov`` and then invokes this script
to render per-package markdown summaries (appended to the job summary) and
as a hard gate on the correctness-critical packages:

* ``src/repro/predictors/`` — the packed kernels have both a specialised
  arm and a generic fallback per structure, and the floor guarantees the
  suite demonstrably exercises them;
* ``src/repro/experiments/`` — the manifest/pipeline/store machinery decides
  which results reach the paper's figures and how they are exchanged
  between machines; silent coverage rot here is silent correctness rot.

Usage::

    python tools/coverage_floor.py --xml coverage.xml \
        --prefix repro/predictors/ --min-percent 85

    # Several floors in one pass (prefix:percent, repeatable):
    python tools/coverage_floor.py --xml coverage.xml \
        --gate repro/predictors/:85 --gate repro/experiments/:85

Exits 1 when any selected file set's aggregate line coverage is below its
floor (or when no files match a selection, which would silently disable the
gate).
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from collections import defaultdict


def file_coverage(xml_path: str):
    """Per-file (covered, valid) line counts from a Cobertura report."""
    root = ET.parse(xml_path).getroot()
    counts = defaultdict(lambda: [0, 0])
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        for line in cls.iter("line"):
            counts[filename][1] += 1
            if int(line.get("hits", "0")) > 0:
                counts[filename][0] += 1
    return counts


def parse_gate(raw: str):
    """Parse one ``prefix:percent`` gate designator."""
    prefix, sep, percent = raw.rpartition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"--gate must look like 'prefix:percent', got {raw!r}")
    try:
        floor = float(percent)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--gate percent must be a number, got {percent!r}") from None
    return prefix, floor


def check_gate(counts, prefix: str, floor: float, markdown: bool) -> int:
    """Report one file selection and gate it; returns a process exit code."""
    selected = {name: cv for name, cv in sorted(counts.items())
                if prefix in name}
    if not selected:
        print(f"coverage_floor: no files match prefix {prefix!r}",
              file=sys.stderr)
        return 1
    covered = sum(cv[0] for cv in selected.values())
    valid = sum(cv[1] for cv in selected.values())
    percent = 100.0 * covered / valid if valid else 0.0

    if markdown:
        title = prefix or "all files"
        print(f"### Coverage — `{title}`\n")
        print("| file | lines | covered | % |")
        print("|---|---:|---:|---:|")
        for name, (cov, tot) in selected.items():
            pct = 100.0 * cov / tot if tot else 0.0
            print(f"| `{name}` | {tot} | {cov} | {pct:.1f}% |")
        print(f"| **total** | **{valid}** | **{covered}** | "
              f"**{percent:.1f}%** |")
    else:
        print(f"{prefix or 'all'}: {covered}/{valid} lines "
              f"= {percent:.1f}% (floor {floor:.1f}%)")

    if percent < floor:
        print(f"coverage_floor: {percent:.1f}% is below the "
              f"{floor:.1f}% floor for {prefix!r}",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xml", default="coverage.xml",
                        help="Cobertura XML report (default: coverage.xml)")
    parser.add_argument("--prefix", default="",
                        help="only count files whose path contains this")
    parser.add_argument("--min-percent", type=float, default=0.0,
                        help="fail when aggregate coverage is below this")
    parser.add_argument("--gate", action="append", type=parse_gate,
                        default=[], metavar="PREFIX:PERCENT",
                        help="repeatable prefix:floor pair; all gates are "
                             "checked, all failures reported")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a markdown table of the selected files")
    args = parser.parse_args(argv)

    counts = file_coverage(args.xml)
    gates = list(args.gate)
    if args.prefix or args.min_percent:
        # An explicit --prefix/--min-percent pair is a gate too, never
        # silently dropped because --gate was also given.
        gates.append((args.prefix, args.min_percent))
    if not gates:
        gates = [("", 0.0)]
    status = 0
    for prefix, floor in gates:
        status |= check_gate(counts, prefix, floor, args.markdown)
    return status


if __name__ == "__main__":
    sys.exit(main())
