"""Coverage-floor gate over a Cobertura ``coverage.xml``.

CI runs the tier-1 suite under ``pytest-cov`` and then invokes this script
twice: once to render a per-package markdown summary (appended to the job
summary) and once as a hard gate on ``src/repro/predictors/`` — the packed
kernels have both a specialised arm and a generic fallback per structure,
and the floor guarantees the suite demonstrably exercises them.

Usage::

    python tools/coverage_floor.py --xml coverage.xml \
        --prefix repro/predictors/ --min-percent 85

Exits 1 when the selected files' aggregate line coverage is below the floor
(or when no files match, which would silently disable the gate).
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from collections import defaultdict


def file_coverage(xml_path: str):
    """Per-file (covered, valid) line counts from a Cobertura report."""
    root = ET.parse(xml_path).getroot()
    counts = defaultdict(lambda: [0, 0])
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        for line in cls.iter("line"):
            counts[filename][1] += 1
            if int(line.get("hits", "0")) > 0:
                counts[filename][0] += 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xml", default="coverage.xml",
                        help="Cobertura XML report (default: coverage.xml)")
    parser.add_argument("--prefix", default="",
                        help="only count files whose path contains this")
    parser.add_argument("--min-percent", type=float, default=0.0,
                        help="fail when aggregate coverage is below this")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a markdown table of the selected files")
    args = parser.parse_args(argv)

    counts = file_coverage(args.xml)
    selected = {name: cv for name, cv in sorted(counts.items())
                if args.prefix in name}
    if not selected:
        print(f"coverage_floor: no files match prefix {args.prefix!r}",
              file=sys.stderr)
        return 1
    covered = sum(cv[0] for cv in selected.values())
    valid = sum(cv[1] for cv in selected.values())
    percent = 100.0 * covered / valid if valid else 0.0

    if args.markdown:
        title = args.prefix or "all files"
        print(f"### Coverage — `{title}`\n")
        print("| file | lines | covered | % |")
        print("|---|---:|---:|---:|")
        for name, (cov, tot) in selected.items():
            pct = 100.0 * cov / tot if tot else 0.0
            print(f"| `{name}` | {tot} | {cov} | {pct:.1f}% |")
        print(f"| **total** | **{valid}** | **{covered}** | "
              f"**{percent:.1f}%** |")
    else:
        print(f"{args.prefix or 'all'}: {covered}/{valid} lines "
              f"= {percent:.1f}% (floor {args.min_percent:.1f}%)")

    if percent < args.min_percent:
        print(f"coverage_floor: {percent:.1f}% is below the "
              f"{args.min_percent:.1f}% floor for {args.prefix!r}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
