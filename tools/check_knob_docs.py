#!/usr/bin/env python3
"""Cross-check the REPRO_* knob inventory against docs and the test scrub.

The knobs a reader can set are only as real as their documentation: PR 9
added five service knobs and the README table was the sole inventory, one
forgotten row away from drifting.  This tool makes the contract mechanical —
every ``REPRO_*`` environment knob referenced anywhere under ``src/`` must:

1. appear in ``docs/knobs.md`` (the single knob inventory the README links
   to), and
2. appear in the ``conftest.py`` scrub list (so a developer's environment
   can never leak into test expectations).

Conversely, a knob documented or scrubbed but no longer referenced in
``src/`` is stale and also fails the check.  CI runs this on every PR.

Usage::

    python tools/check_knob_docs.py [--repo-root DIR]
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, Set

KNOB_RE = re.compile(r"REPRO_[A-Z][A-Z_0-9]*")


def knobs_in_tree(src_root: str) -> Dict[str, Set[str]]:
    """``{knob: {relative files referencing it}}`` for every knob in src/."""
    found: Dict[str, Set[str]] = {}
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for knob in KNOB_RE.findall(text):
                relative = os.path.relpath(path, src_root)
                found.setdefault(knob, set()).add(relative)
    return found


def knobs_in_file(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return set(KNOB_RE.findall(handle.read()))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="check REPRO_* knob docs/scrub coverage")
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: this script's "
                             "parent's parent)")
    args = parser.parse_args(argv)
    root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.join(root, "src")
    docs_path = os.path.join(root, "docs", "knobs.md")
    conftest_path = os.path.join(root, "conftest.py")
    for path in (src_root, docs_path, conftest_path):
        if not os.path.exists(path):
            print(f"check_knob_docs: missing {path}", file=sys.stderr)
            return 1

    referenced = knobs_in_tree(src_root)
    documented = knobs_in_file(docs_path)
    scrubbed = knobs_in_file(conftest_path)

    errors = []
    for knob in sorted(referenced):
        files = ", ".join(sorted(referenced[knob]))
        if knob not in documented:
            errors.append(f"{knob} is referenced in src/ ({files}) but not "
                          f"documented in docs/knobs.md")
        if knob not in scrubbed:
            errors.append(f"{knob} is referenced in src/ ({files}) but not "
                          f"scrubbed in conftest.py — tests can leak the "
                          f"developer's environment")
    for knob in sorted(documented - set(referenced)):
        errors.append(f"{knob} is documented in docs/knobs.md but no longer "
                      f"referenced in src/ — stale row?")
    for knob in sorted(scrubbed - set(referenced)):
        errors.append(f"{knob} is scrubbed in conftest.py but no longer "
                      f"referenced in src/ — stale scrub entry?")

    if errors:
        for error in errors:
            print(f"check_knob_docs: {error}", file=sys.stderr)
        return 1
    print(f"knob docs OK: {len(referenced)} REPRO_* knob(s) documented "
          f"and scrubbed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
